"""Deterministic fault injection: named failpoints for chaos testing.

Production-scale serving earns its throughput numbers only when it
survives faults — but a chaos test that kills workers *randomly* is a
flaky test.  This module provides **failpoints**: named hooks compiled
into the hot paths (worker dispatch, the wire front end, the disk
cache) that do nothing until armed, and when armed fire
**deterministically by hit count**.  The same workload with the same
failpoint spec produces the same faults at the same points, every run —
chaos tests are ordinary reproducible tests.

Arming
------
Two equivalent ways:

* the ``REPRO_FAILPOINTS`` environment variable, read once at import —
  ``;``-separated specs of the form ``name[:hits[:param]]`` where
  ``hits`` is a ``,``-separated list of 1-based hit numbers or ``*``
  (every hit) and ``param`` is an optional float the call site
  interprets (e.g. the hang duration)::

      REPRO_FAILPOINTS="worker.crash_before_batch:1;wire.drop_connection:2,4"

* the test API: :func:`arm` / :func:`disarm` / :func:`reset`, or the
  :func:`armed` context manager that restores the previous state.

Firing
------
Call sites ask :func:`should_fire(name) <should_fire>`; every call while
the failpoint is armed increments its hit counter, and the call returns
``True`` exactly when the counter is in the armed hit set.  Counters
start at the moment of arming (or process start for env-armed specs), so
determinism is relative to the armed workload — not to whatever traffic
ran before.  When a failpoint is *not* armed the call is a single dict
lookup; the hooks are safe to leave in production code.

The registry lives in driver-process module state.  Worker *faults* are
injected driver-side — the driver stamps the fault onto the work message
it sends (see :mod:`repro.perf.pool`), so a respawned worker does not
re-inherit a one-shot crash and hit counts stay global across the pool.

Known failpoints (the chaos vocabulary, exercised by
``tests/test_faults.py``)::

    worker.crash_before_batch   worker exits hard before running a batch
    worker.hang                 worker sleeps (param seconds, default 30)
                                instead of answering — deadline fodder
    pool.respawn_fail           worker respawn attempt raises
    wire.drop_connection        server drops the TCP connection instead
                                of sending a response
    diskcache.corrupt_read      a disk-cache read returns a corrupted
                                blob (must degrade to a miss)
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

#: Environment variable holding the failpoint spec string.
ENV_VAR = "REPRO_FAILPOINTS"

#: The documented failpoint names (arming an unknown name is allowed —
#: it simply never fires — but tests assert against this vocabulary).
KNOWN_FAILPOINTS = (
    "worker.crash_before_batch",
    "worker.hang",
    "pool.respawn_fail",
    "wire.drop_connection",
    "diskcache.corrupt_read",
)

#: Default hang duration (seconds) when ``worker.hang`` carries no param.
DEFAULT_HANG_SECONDS = 30.0


@dataclass
class _Failpoint:
    """One armed failpoint: which hits fire, plus its live counter."""

    name: str
    hits: Optional[frozenset] = None  # None means every hit fires
    param: Optional[float] = None
    count: int = 0
    fired: int = 0

    def check(self) -> bool:
        self.count += 1
        firing = self.hits is None or self.count in self.hits
        if firing:
            self.fired += 1
        return firing


_LOCK = threading.Lock()
_ARMED: Dict[str, _Failpoint] = {}


def parse_spec(spec: str) -> Dict[str, Tuple[Optional[frozenset], Optional[float]]]:
    """Parse a ``REPRO_FAILPOINTS`` spec string (see module docstring).

    Returns ``{name: (hits, param)}``; malformed entries raise
    ``ValueError`` — a chaos run with a typo'd spec must fail loudly,
    not silently test nothing.
    """
    armed: Dict[str, Tuple[Optional[frozenset], Optional[float]]] = {}
    for entry in spec.split(";"):
        entry = entry.strip()
        if not entry:
            continue
        parts = entry.split(":")
        if len(parts) > 3:
            raise ValueError(f"malformed failpoint spec {entry!r}")
        name = parts[0].strip()
        if not name:
            raise ValueError(f"malformed failpoint spec {entry!r}")
        hits: Optional[frozenset] = frozenset({1})
        if len(parts) >= 2:
            raw_hits = parts[1].strip()
            if raw_hits == "*":
                hits = None
            else:
                try:
                    numbers = frozenset(
                        int(number) for number in raw_hits.split(",") if number.strip()
                    )
                except ValueError:
                    raise ValueError(f"malformed hit list in {entry!r}")
                if not numbers or any(number < 1 for number in numbers):
                    raise ValueError(f"malformed hit list in {entry!r}")
                hits = numbers
        param: Optional[float] = None
        if len(parts) == 3:
            try:
                param = float(parts[2])
            except ValueError:
                raise ValueError(f"malformed param in {entry!r}")
        armed[name] = (hits, param)
    return armed


def arm(
    name: str,
    hits: Optional[Iterable[int]] = (1,),
    param: Optional[float] = None,
) -> None:
    """Arm ``name``; ``hits`` is a 1-based hit set (``None`` = every hit).

    Re-arming resets the hit counter — each arm starts a fresh
    deterministic window.
    """
    hit_set = None if hits is None else frozenset(int(hit) for hit in hits)
    if hit_set is not None and (not hit_set or any(hit < 1 for hit in hit_set)):
        raise ValueError(f"hits must be 1-based positive integers, got {hits!r}")
    with _LOCK:
        _ARMED[name] = _Failpoint(name=name, hits=hit_set, param=param)


def disarm(name: str) -> None:
    with _LOCK:
        _ARMED.pop(name, None)


def reset() -> None:
    """Disarm everything (including env-armed specs) and drop all counters."""
    with _LOCK:
        _ARMED.clear()


def arm_from_env(environ=None) -> None:
    """(Re-)arm from ``REPRO_FAILPOINTS``; a no-op when the var is unset."""
    spec = (environ if environ is not None else os.environ).get(ENV_VAR)
    if not spec:
        return
    for name, (hits, param) in parse_spec(spec).items():
        with _LOCK:
            _ARMED[name] = _Failpoint(name=name, hits=hits, param=param)


def is_armed(name: str) -> bool:
    return name in _ARMED


def should_fire(name: str) -> bool:
    """Record one hit of failpoint ``name``; ``True`` when it fires.

    The disarmed fast path is a single dict lookup — the hooks cost
    nothing in production.
    """
    if name not in _ARMED:
        return False
    with _LOCK:
        failpoint = _ARMED.get(name)
        if failpoint is None:  # disarmed between the lookup and the lock
            return False
        return failpoint.check()


def param(name: str, default: Optional[float] = None) -> Optional[float]:
    """The armed failpoint's param (e.g. a hang duration), or ``default``."""
    failpoint = _ARMED.get(name)
    if failpoint is None or failpoint.param is None:
        return default
    return failpoint.param


def stats() -> Dict[str, Dict[str, int]]:
    """Per-failpoint ``{hits, fired}`` counters (observability for tests)."""
    with _LOCK:
        return {
            name: {"hits": failpoint.count, "fired": failpoint.fired}
            for name, failpoint in _ARMED.items()
        }


@contextmanager
def armed(
    name: str,
    hits: Optional[Iterable[int]] = (1,),
    param: Optional[float] = None,
):
    """Arm ``name`` for the duration of a ``with`` block, then restore."""
    with _LOCK:
        previous = _ARMED.get(name)
    arm(name, hits=hits, param=param)
    try:
        yield
    finally:
        with _LOCK:
            if previous is None:
                _ARMED.pop(name, None)
            else:
                _ARMED[name] = previous


# Env-armed specs take effect at import — the worker processes of a
# chaos CI job inherit the variable (and, under fork, this module's
# state) with zero per-test plumbing.
arm_from_env()
