"""The asyncio serving layer over a multi-table catalog.

The paper's deployment is an interactive web service: many users hold
concurrent sessions, each a stream of questions over (possibly
different) tables.  :class:`AsyncServer` is that layer for the
reproduction, built on three pieces that already exist:

* the :class:`~repro.tables.catalog.TableCatalog` routes each question
  to its shard through the content-addressed caches;
* a **micro-batching dispatcher** drains every request that arrived
  while the previous batch was executing and ships the whole batch to a
  worker thread via ``loop.run_in_executor`` — concurrent sessions are
  multiplexed over one :meth:`~repro.tables.catalog.TableCatalog.ask_many`
  call, which in turn fans out over the thread pool or the GIL-free
  process-pool backend (``backend="process"``).  Batches are composed
  with **shard affinity**: routed requests are stably grouped by their
  resolved shard before the pool call, so same-table questions run
  adjacent (process-pool locality) without changing any output;
* answers stay **order-stable and bit-identical** to the sequential
  path: per-question results are deterministic and index-aligned through
  every layer, so interleaving sessions can reorder *scheduling* but
  never *answers* (locked in by ``tests/test_serving.py``).

The event loop never blocks on parsing: it only awaits futures resolved
by the dispatcher.

The TCP front end (:meth:`AsyncServer.serve`) speaks the **versioned
JSON-lines protocol** of :mod:`repro.api.wire`: legacy v1 lines
(``{"question": ..., "table": ...}`` → ``{"ok": true, ...}``) keep
their byte-compatible responses, while v2 lines (``{"v": 2, "id": ...,
"op": "query", ...}``) carry the full serialized
:class:`~repro.api.envelope.QueryResult` — candidates, routing
decision, timing — built by the same
:mod:`repro.api.engine` builders the in-process façade uses, so the
wire answer is bit-identical to :meth:`ReproEngine.query`.  Version
negotiation is per connection (``{"v": 2, "op": "hello"}``); lines are
framed manually with a bounded buffer, so an oversized line gets a
structured ``BAD_REQUEST`` response instead of killing the connection.
"""

from __future__ import annotations

import asyncio
import json
import time
import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .. import faults
from ..api import wire
from ..api.engine import ReproEngine, result_from_served
from ..api.envelope import QueryRequest
from ..api.errors import (
    ApiError,
    ErrorCode,
    ServerClosed,
    classify_exception,
    overloaded_error,
    timeout_error,
)
from ..interface.nl_interface import InterfaceResponse
from ..perf.pool import DeadlineExceeded
from ..tables.catalog import CatalogAnswer, CatalogError, TableCatalog, TableLike

#: What one served question resolves to: a routed single-table response
#: or a corpus-wide ranking.
ServedAnswer = Union[InterfaceResponse, CatalogAnswer]

#: Chunk size for the manual line framing of the TCP front end.
_READ_CHUNK = 65536


@dataclass(frozen=True)
class _AskRequest:
    """One enqueued question (``ref=None`` means corpus-wide routing).

    ``prune`` only applies corpus-wide: ``None`` defers to the catalog's
    routing policy, ``False`` forces the broadcast for this request.
    ``backend`` overrides the server's pool backend for this request.
    ``want_ref`` asks the dispatcher to return the *resolved* catalog
    ref alongside the answer (a :class:`_ResolvedAnswer`) — how
    :meth:`AsyncServer.aquery` learns the shard identity without ever
    resolving on the event loop.  ``deadline`` is an absolute
    ``time.monotonic()`` instant computed at enqueue from the request's
    ``deadline_ms``, so queue wait and worker time draw from one budget.
    """

    question: str
    ref: Optional[TableLike]
    k: Optional[int]
    prune: Optional[bool] = None
    backend: Optional[str] = None
    want_ref: bool = False
    deadline: Optional[float] = None
    #: Corpus-wide only: top-N routing cap (the router's heap path);
    #: ``None`` keeps every retrieval hit.
    max_candidates: Optional[int] = None


@dataclass(frozen=True)
class _ResolvedAnswer:
    """A routed answer paired with its resolved shard ref (``want_ref``)."""

    ref: object
    answer: "InterfaceResponse"


@dataclass(frozen=True)
class _Failure:
    """A per-request error crossing the executor boundary."""

    error: Exception


@dataclass
class ServerStats:
    """Dispatcher counters (observability for the bench and the CLI).

    ``as_dict`` reports, with stable types (documented in the README's
    serving section): ``requests``/``batches``/``largest_batch``/
    ``errors``/``shard_groups`` as ints and ``mean_batch`` always as a
    float (``0.0`` before the first batch — historically it degraded to
    the int ``0``, which broke type-sensitive consumers).

    The failure counters tell the fault-tolerance story: ``timeouts``
    (requests that expired their ``deadline_ms``), ``shed`` (requests
    rejected ``OVERLOADED`` by the bounded queue), ``worker_respawns``
    and ``pool_downgrades`` (mirrored from the persistent pools each
    time the stats are served).  ``timeouts`` count separately from
    ``errors`` — a timeout is also an error.

    The churn counters tell the live-corpus story: ``corpus_updates``
    and ``shards_retired`` (mirrored from the catalog's lineage
    machinery each time the stats are served) plus ``pinned_requests``
    (routed requests this server pinned to their resolved snapshot so a
    concurrent ``update`` could not retire it under them).

    The retrieval counters tell the corpus-scale story:
    ``retrieval_shards`` / ``retrieval_terms`` /
    ``retrieval_postings_bytes`` (mirrored from the corpus index's O(1)
    scale counters each time the stats are served) — how many shards the
    router ranks per corpus-wide question and what the inverted index
    costs in memory.
    """

    requests: int = 0
    batches: int = 0
    largest_batch: int = 0
    errors: int = 0
    shard_groups: int = 0
    timeouts: int = 0
    shed: int = 0
    worker_respawns: int = 0
    pool_downgrades: int = 0
    corpus_updates: int = 0
    shards_retired: int = 0
    pinned_requests: int = 0
    retrieval_shards: int = 0
    retrieval_terms: int = 0
    retrieval_postings_bytes: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "requests": self.requests,
            "batches": self.batches,
            "largest_batch": self.largest_batch,
            "errors": self.errors,
            "shard_groups": self.shard_groups,
            "timeouts": self.timeouts,
            "shed": self.shed,
            "worker_respawns": self.worker_respawns,
            "pool_downgrades": self.pool_downgrades,
            "corpus_updates": self.corpus_updates,
            "shards_retired": self.shards_retired,
            "pinned_requests": self.pinned_requests,
            "retrieval_shards": self.retrieval_shards,
            "retrieval_terms": self.retrieval_terms,
            "retrieval_postings_bytes": self.retrieval_postings_bytes,
            "mean_batch": (
                round(self.requests / self.batches, 2) if self.batches else 0.0
            ),
        }


class _Connection:
    """Per-connection wire state: the negotiated protocol version."""

    __slots__ = ("version",)

    def __init__(self) -> None:
        self.version: Optional[int] = None


class AsyncServer:
    """Serves concurrent sessions over a :class:`TableCatalog`.

    Parameters
    ----------
    catalog:
        The :class:`TableCatalog` — or a :class:`~repro.api.ReproEngine`
        wrapping one — to serve.  All routing, eviction and cache policy
        lives there; the server adds concurrency only.
    max_workers:
        Fan-out of one batch inside
        :meth:`~repro.tables.catalog.TableCatalog.ask_many`.
    backend:
        ``"thread"`` (shared caches, default) or ``"process"`` (the
        GIL-free pool of :mod:`repro.perf.procpool`) — the pool one
        batch of multiplexed questions runs on.
    max_batch:
        Upper bound on questions merged into one dispatcher batch.
    max_line_bytes:
        Upper bound on one TCP request line.  Longer lines are answered
        with a structured ``BAD_REQUEST`` (the connection survives).
    persistent:
        When true (the default) batches run on the engine's long-lived
        :class:`~repro.perf.pool.WorkerPool` — warm workers with
        incremental table shipping and shard pinning, reused across
        every dispatcher batch.  ``False`` restores the per-batch
        executors.
    max_pending:
        Backpressure bound: the most requests the dispatcher queue will
        hold.  When it is full, new requests are **shed** immediately
        with a coded ``OVERLOADED`` error (counted in
        ``ServerStats.shed``) instead of growing the queue without
        bound.  ``0`` disables the bound.

    Use as an async context manager (``async with AsyncServer(...)``) or
    call :meth:`start` / :meth:`stop` explicitly.
    """

    def __init__(
        self,
        catalog: Union[TableCatalog, ReproEngine],
        max_workers: int = 8,
        backend: str = "thread",
        max_batch: int = 64,
        max_line_bytes: int = 64 * 1024,
        persistent: bool = True,
        max_pending: int = 1024,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"AsyncServer needs max_workers >= 1, got {max_workers}")
        if max_batch < 1:
            raise ValueError(f"AsyncServer needs max_batch >= 1, got {max_batch}")
        if max_line_bytes < 1024:
            raise ValueError(
                f"AsyncServer needs max_line_bytes >= 1024, got {max_line_bytes}"
            )
        if max_pending < 0:
            raise ValueError(
                f"AsyncServer needs max_pending >= 0, got {max_pending}"
            )
        if isinstance(catalog, ReproEngine):
            self.engine = catalog
            self.catalog = catalog.catalog
            self._owns_engine = False
        else:
            self.catalog = catalog
            self.engine = ReproEngine(
                catalog,
                workers=max_workers,
                backend=backend,
                persistent_pools=persistent,
            )
            self._owns_engine = True
        self.max_workers = max_workers
        self.backend = backend
        self.max_batch = max_batch
        self.max_line_bytes = max_line_bytes
        self.persistent = persistent
        self.max_pending = max_pending
        self.stats = ServerStats()
        # One dispatcher thread: batches run serially (parallelism lives
        # *inside* a batch, via ask_many's worker pool), so arrivals
        # during a batch accumulate into the next one.  The jobs executor
        # carries corpus-wide broadcasts so they overlap the routed
        # groups (and each other) instead of running serially inline.
        self._executor: Optional[ThreadPoolExecutor] = None
        self._jobs: Optional[ThreadPoolExecutor] = None
        self._queue: Optional[asyncio.Queue] = None
        self._dispatcher: Optional[asyncio.Task] = None
        #: Futures of accepted-but-unanswered requests; what a graceful
        #: stop drains before tearing the dispatcher down.
        self._inflight: set = set()
        self._draining = False

    # -- lifecycle -------------------------------------------------------------
    async def start(self) -> "AsyncServer":
        """Start the dispatcher (idempotent; ``ask`` calls it lazily)."""
        if self._dispatcher is None or self._dispatcher.done():
            self._queue = asyncio.Queue(
                maxsize=self.max_pending if self.max_pending else 0
            )
            self._draining = False
            self._executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-serve"
            )
            self._jobs = ThreadPoolExecutor(
                max_workers=self.max_workers, thread_name_prefix="repro-serve-job"
            )
            self._dispatcher = asyncio.get_running_loop().create_task(
                self._dispatch_loop()
            )
        return self

    async def stop(self, drain: bool = True, drain_timeout: float = 60.0) -> None:
        """Stop the server; by default **drain** accepted work first.

        Graceful shutdown: intake closes immediately (new :meth:`ask`
        calls get :class:`~repro.api.errors.ServerClosed`), every
        already-accepted request is allowed up to ``drain_timeout``
        seconds to finish, and only then is the dispatcher torn down.
        ``drain=False`` restores the old hard stop that fails queued
        requests.  Idempotent and safe to call concurrently — a second
        ``stop`` (even racing the first) returns cleanly.

        Concurrent :meth:`ask` calls racing a stop get a clean
        :class:`~repro.api.errors.ServerClosed` (never an internal
        ``AttributeError`` — the queue handoff is identity-checked).
        When the server built its own engine it also tears down the
        engine's persistent pools; a caller-supplied engine keeps its
        pools (its owner decides their lifetime).
        """
        self._draining = True
        if drain and self._inflight:
            done, pending = await asyncio.wait(
                list(self._inflight), timeout=drain_timeout
            )
            for future in pending:  # drain budget exhausted: hard-fail
                if not future.done():
                    future.set_exception(ServerClosed("server stopped"))
            # asyncio.wait hands back completed futures without consuming
            # their exceptions; the real awaiters do.  Touch them here so
            # futures abandoned by cancelled sessions don't warn.
            for future in done:
                if future.cancelled():
                    continue
                future.exception()
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        if self._queue is not None:
            while True:
                try:
                    _, future = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if not future.done():
                    future.set_exception(ServerClosed("server stopped"))
            self._queue = None
        # The dispatcher executor first (waits out any in-flight
        # _answer_batch, which may still submit to the jobs executor),
        # then the jobs executor.
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._jobs is not None:
            self._jobs.shutdown(wait=True)
            self._jobs = None
        if self._owns_engine:
            self.engine.close()
        # Lazy restart stays possible (historic semantics): only an
        # in-progress drain turns new asks away.
        self._draining = False

    async def __aenter__(self) -> "AsyncServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- the asyncio API -------------------------------------------------------
    async def _enqueue(self, request: _AskRequest) -> object:
        """Queue one request and await its answer (race-safe vs ``stop``).

        The queue reference is captured once after :meth:`start`;
        a concurrent :meth:`stop` — before the put, or landing between
        the put and the dispatcher picking the request up — surfaces as
        :class:`~repro.api.errors.ServerClosed`, never as an
        ``AttributeError`` on the nulled queue (the historical race).
        """
        if self._draining:
            # A graceful stop is underway: accepted work drains, new
            # work is turned away at the door.
            raise ServerClosed("server stopping")
        await self.start()
        queue = self._queue
        if queue is None:  # stop() ran between start() and here
            raise ServerClosed("server stopped")
        future = asyncio.get_running_loop().create_future()
        try:
            # Backpressure: never wait for queue room — a full queue
            # sheds the request immediately with a coded, retryable
            # OVERLOADED instead of hiding the overload in queue delay.
            queue.put_nowait((request, future))
        except asyncio.QueueFull:
            self.stats.shed += 1
            raise overloaded_error(
                f"server overloaded: {self.max_pending} requests already "
                "pending; retry with backoff"
            ) from None
        self._inflight.add(future)
        future.add_done_callback(self._inflight.discard)
        if self._queue is not queue and not future.done():
            # stop() swapped the queue out from under the put: the
            # request can never be served — fail it like the drained ones.
            future.set_exception(ServerClosed("server stopped"))
        return await future

    async def ask(
        self,
        question: str,
        table: Optional[TableLike] = None,
        k: Optional[int] = None,
        prune: Optional[bool] = None,
        backend: Optional[str] = None,
        deadline_ms: Optional[int] = None,
        max_candidates: Optional[int] = None,
    ) -> ServedAnswer:
        """Answer one question; ``table=None`` routes corpus-wide.

        Safe to call from any number of concurrent tasks: requests are
        queued, micro-batched and answered off the event loop.  ``prune``
        (corpus-wide only) overrides the catalog's routing policy per
        request; ``max_candidates`` (corpus-wide only) caps routing at
        the top N shards; ``backend`` overrides the server's pool
        backend.  ``deadline_ms`` bounds the whole wait (queue + parse):
        past it the request fails with a coded ``TIMEOUT`` while the
        rest of its batch completes.
        """
        deadline = (
            time.monotonic() + deadline_ms / 1000.0
            if deadline_ms is not None
            else None
        )
        return await self._enqueue(
            _AskRequest(
                question, table, k, prune, backend, deadline=deadline,
                max_candidates=max_candidates,
            )
        )

    async def aquery(self, request: QueryRequest):
        """Answer one :class:`QueryRequest` through the dispatcher.

        The v2 face of :meth:`ask`: the request is validated, resolved
        and micro-batched like any other, and the answer comes back as a
        :class:`~repro.api.envelope.QueryResult` built by the shared
        :mod:`repro.api.engine` builders — bit-identical (modulo timing)
        to :meth:`ReproEngine.query` on the same catalog.

        Resolution happens on the *dispatcher thread*, never here: the
        catalog's resolve path takes the catalog lock (held across disk
        writes during eviction), which must not stall the event loop.
        """
        from ..api.engine import error_result
        from ..api.envelope import ShardInfo

        try:
            request.validate()
            # Acceptance pins the observation point: whatever the corpus
            # version is *now* is the version this answer is a read of,
            # even if updates land while the request sits in the queue.
            accepted_version = self.catalog.version
            # The budget starts ticking at acceptance: queue wait,
            # dispatch and worker time all draw from the same deadline.
            deadline = (
                time.monotonic() + request.deadline_ms / 1000.0
                if request.deadline_ms is not None
                else None
            )
            if request.resolved_mode == "table":
                outcome = await self._enqueue(
                    _AskRequest(
                        request.question,
                        request.target,
                        request.k,
                        request.prune,
                        request.backend,
                        want_ref=True,
                        deadline=deadline,
                    )
                )
                ref, answer = outcome.ref, outcome.answer
            else:
                ref = None
                answer = await self._enqueue(
                    _AskRequest(
                        request.question,
                        None,
                        request.k,
                        request.prune,
                        request.backend,
                        deadline=deadline,
                        max_candidates=request.max_candidates,
                    )
                )
        except Exception as error:
            return error_result(request, classify_exception(error))
        # The resolved ref carries the *registered* identity (which may
        # alias the table's own name) — exactly what ReproEngine.query
        # reports, keeping the wire envelope bit-identical to it.
        return result_from_served(
            request.question,
            answer,
            request=request,
            shard=ShardInfo.from_ref(ref) if ref is not None else None,
            corpus_version=accepted_version,
        )

    async def ask_gathered(
        self, items: Sequence[Tuple[str, Optional[TableLike]]], k: Optional[int] = None
    ) -> List[ServedAnswer]:
        """Answer many questions concurrently; results index-aligned."""
        return list(
            await asyncio.gather(
                *(self.ask(question, table=ref, k=k) for question, ref in items)
            )
        )

    async def run_session(
        self,
        items: Sequence[Tuple[str, Optional[TableLike]]],
        k: Optional[int] = None,
    ) -> List[ServedAnswer]:
        """One user session: questions asked *in order*, answers aligned.

        Within a session each question awaits the previous answer (the
        interactive regime of the paper); across sessions the dispatcher
        interleaves freely.
        """
        answers: List[ServedAnswer] = []
        for question, ref in items:
            answers.append(await self.ask(question, table=ref, k=k))
        return answers

    # -- dispatcher ------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            first = await self._queue.get()
            batch = [first]
            while len(batch) < self.max_batch:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            requests = [request for request, _ in batch]
            self.stats.requests += len(batch)
            self.stats.batches += 1
            self.stats.largest_batch = max(self.stats.largest_batch, len(batch))
            try:
                outcomes = await loop.run_in_executor(
                    self._executor, self._answer_batch, requests
                )
            except asyncio.CancelledError:
                # stop() cancelled us mid-batch: fail the in-flight
                # futures so their sessions unblock, then shut down.
                for _, future in batch:
                    if not future.done():
                        future.set_exception(ServerClosed("server stopped"))
                raise
            except Exception as error:  # pragma: no cover - defensive
                self.stats.errors += len(batch)
                for _, future in batch:
                    if not future.done():
                        future.set_exception(
                            ServerClosed(f"batch execution failed: {error!r}")
                        )
                continue
            for (_, future), outcome in zip(batch, outcomes):
                if future.done():  # the session was cancelled while parsing
                    continue
                if isinstance(outcome, _Failure):
                    self.stats.errors += 1
                    if isinstance(outcome.error, DeadlineExceeded) or (
                        isinstance(outcome.error, ApiError)
                        and outcome.error.code is ErrorCode.TIMEOUT
                    ):
                        self.stats.timeouts += 1
                    future.set_exception(outcome.error)
                else:
                    future.set_result(outcome)

    def _pool(self, backend: Optional[str]):
        """The engine's persistent pool for ``backend`` (``None`` if off)."""
        if not self.persistent:
            return None
        return self.engine.pool(backend or self.backend)

    def _answer_batch(self, requests: Sequence[_AskRequest]) -> List[object]:
        """Answer one batch on the dispatcher thread (never the event loop).

        Routed questions are grouped by ``(k, backend)``, then composed
        with **shard affinity**: within a group, requests are stably
        sorted by their resolved shard's digest before the single
        :meth:`TableCatalog.ask_many` call, so questions targeting the
        same shard land adjacent in the batch — the persistent pool pins
        each shard's run to its worker, the process-pool backend ships
        each table once per contiguous run, and the thread backend hits
        warm per-table caches back to back.  The sort is stable
        (same-shard requests keep arrival order) and responses are
        re-aligned by queue position, so outputs remain order-stable and
        bit-identical to the unsorted path.

        Corpus-wide questions run through :meth:`TableCatalog.ask_any`
        (the retrieve-then-parse pipeline) **interleaved** with the
        routed groups: each broadcast is submitted to the jobs executor
        up front and collected after the routed groups finish, so a slow
        corpus sweep never serialises in front of cheap routed traffic
        (it used to run inline, and strictly before the groups).
        Per-request errors (unknown refs) fail only their own future.

        Each routed request is **pinned** to its resolved shard for the
        life of the batch: a concurrent :meth:`TableCatalog.update`
        supersedes the snapshot but cannot retire it until the unpin in
        the ``finally`` below, so every accepted request completes
        against the exact version it resolved — never a mid-flight
        mixture of old and new content.
        """
        outcomes: List[object] = [None] * len(requests)
        routed: Dict[
            Tuple[Optional[int], Optional[str]],
            List[Tuple[int, _AskRequest, object]],
        ] = {}
        broadcasts: List[Tuple[int, object]] = []
        pinned: List[object] = []
        try:
            for position, request in enumerate(requests):
                if (
                    request.deadline is not None
                    and time.monotonic() >= request.deadline
                ):
                    # Expired while queued: never dispatched at all.
                    outcomes[position] = _Failure(
                        timeout_error(
                            f"deadline expired before dispatch of "
                            f"{request.question!r}"
                        )
                    )
                    continue
                if request.ref is None:
                    backend = request.backend or self.backend
                    broadcasts.append(
                        (
                            position,
                            self._jobs.submit(
                                self.catalog.ask_any,
                                request.question,
                                k=request.k,
                                workers=self.max_workers,
                                backend=backend,
                                prune=request.prune,
                                pool=self._pool(backend),
                                max_candidates=request.max_candidates,
                            ),
                        )
                    )
                    continue
                try:
                    ref = self.catalog.resolve(request.ref)
                    # Pin the resolved snapshot: it stays answerable
                    # even if an update lands before (or while) the
                    # group executes.
                    ref = self.catalog.pin(ref)
                except CatalogError as error:
                    outcomes[position] = _Failure(error)
                    continue
                pinned.append(ref)
                routed.setdefault((request.k, request.backend), []).append(
                    (position, request, ref)
                )
            self.stats.pinned_requests += len(pinned)
            for (k, backend), group in routed.items():
                # Shard-affinity composition: stable sort by resolved digest.
                group.sort(key=lambda entry: entry[2].digest)
                self.stats.shard_groups += len(
                    {ref.digest for _, _, ref in group}
                )
                try:
                    responses = self.catalog.ask_many(
                        [(request.question, ref) for _, request, ref in group],
                        k=k,
                        workers=self.max_workers,
                        backend=backend or self.backend,
                        pool=self._pool(backend),
                        deadlines=[request.deadline for _, request, _ in group],
                    )
                except Exception as error:
                    for position, _, _ in group:
                        outcomes[position] = _Failure(error)
                    continue
                for (position, request, ref), response in zip(group, responses):
                    if response.error is not None:
                        # A per-item pool failure (deadline expiry, a worker
                        # dead past every retry) fails only its own future.
                        outcomes[position] = _Failure(response.error)
                        continue
                    outcomes[position] = (
                        _ResolvedAnswer(ref, response)
                        if request.want_ref
                        else response
                    )
            for position, future in broadcasts:
                try:
                    outcomes[position] = future.result()
                except Exception as error:
                    outcomes[position] = _Failure(error)
        finally:
            # Unpin in all cases — a pinned-but-failed request must not
            # keep its superseded snapshot alive forever.  Retirement of
            # any shard superseded mid-batch fires here, on the
            # dispatcher thread.
            for ref in pinned:
                self.catalog.unpin(ref)
        return outcomes

    # -- TCP front end ---------------------------------------------------------
    async def serve(self, host: str = "127.0.0.1", port: int = 8765):
        """Open the JSON-lines TCP endpoint; returns the asyncio server.

        One request per line; see :mod:`repro.api.wire` for both protocol
        versions.  v1: ``{"op": "list"}`` enumerates the catalog,
        ``{"op": "stats"}`` reports catalog + dispatcher counters.  v2:
        ``{"v": 2, "op": "hello"}`` negotiates, ``{"v": 2, "op":
        "query", ...}`` answers with the serialized ``QueryResult``.
        """
        await self.start()
        return await asyncio.start_server(self._handle_client, host, port)

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        connection = _Connection()

        async def send(payload: Dict[str, object]) -> None:
            if faults.should_fire("wire.drop_connection"):
                # Injected fault: kill the connection with a hard RST
                # instead of the response — the client must surface a
                # coded SERVER_CLOSED, never a raw traceback.
                writer.transport.abort()
                raise ConnectionResetError("injected wire.drop_connection")
            writer.write(
                json.dumps(payload, ensure_ascii=False).encode("utf-8") + b"\n"
            )
            await writer.drain()

        # Lines are framed manually (reader.read, never reader.readline):
        # StreamReader.readline raises LimitOverrunError/ValueError on a
        # line longer than the stream limit and leaves the connection
        # unusable — an oversized request would kill the session with no
        # response.  With our own buffer the oversized line is answered
        # with a structured BAD_REQUEST and *discarded up to its
        # newline*, and the connection keeps serving.
        buffer = bytearray()
        dropping = False
        try:
            while True:
                newline = buffer.find(b"\n")
                if newline >= 0:
                    line = bytes(buffer[:newline])
                    del buffer[: newline + 1]
                    if dropping:
                        # The tail of an already-answered oversized line.
                        dropping = False
                        continue
                    if len(line) > self.max_line_bytes:
                        await send(self._oversized_payload(connection))
                        continue
                    await send(await self._handle_line(line, connection))
                    continue
                if dropping:
                    buffer.clear()
                elif len(buffer) > self.max_line_bytes:
                    await send(self._oversized_payload(connection))
                    dropping = True
                    buffer.clear()
                chunk = await reader.read(_READ_CHUNK)
                if not chunk:
                    if buffer and not dropping:
                        # Trailing unterminated line at EOF (legacy
                        # readline behaviour): answer it before closing.
                        await send(await self._handle_line(bytes(buffer), connection))
                    break
                buffer += chunk
        except ConnectionResetError:
            pass  # the peer is gone (or an injected drop): just clean up
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    def _oversized_payload(self, connection: _Connection) -> Dict[str, object]:
        error = ApiError(
            ErrorCode.BAD_REQUEST,
            f"bad request: line exceeds {self.max_line_bytes} bytes",
        )
        if (connection.version or 1) >= 2:
            return wire.v2_error_response(error)
        return wire.v1_error_response(error)

    async def _handle_line(
        self, line: bytes, connection: _Connection
    ) -> Dict[str, object]:
        """Answer one wire line in whichever protocol version governs it."""
        try:
            request = wire.decode_line(line)
        except ApiError as error:
            if (connection.version or 1) >= 2:
                return wire.v2_error_response(error)
            return wire.v1_error_response(error)
        request_id = request.get("id")
        try:
            version = wire.request_version(request, connection.version)
        except ApiError as error:
            # An unsupported version is answered in the newest shape we
            # speak — the requester already left v1 territory.
            return wire.v2_error_response(error, request_id)
        if version >= 2:
            return await self._handle_v2(request, connection)
        return await self._handle_v1(request)

    # -- v1 (legacy, byte-compatible) ------------------------------------------
    async def _handle_v1(self, request: Dict[str, object]) -> Dict[str, object]:
        op = request.get("op", "ask")
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "list":
            return {"ok": True, "tables": self._table_listing()}
        if op == "stats":
            return {"ok": True, **self._stats_payload()}
        if op != "ask":
            return wire.v1_error_response(
                ApiError(ErrorCode.UNKNOWN_OP, f"unknown op {op!r}")
            )
        try:
            ask_request = self._wire_ask_request(request)
            answer = await self.ask(
                ask_request.question,
                table=ask_request.ref,
                k=ask_request.k,
                prune=ask_request.prune,
            )
        except Exception as error:
            return wire.v1_error_response(self._wire_error(error))
        return wire.v1_answer_payload(answer)

    # -- v2 (the typed envelope) -----------------------------------------------
    async def _handle_v2(
        self, request: Dict[str, object], connection: _Connection
    ) -> Dict[str, object]:
        request_id = request.get("id")
        op = request.get("op", "query")
        if op not in wire.V2_OPS:
            return wire.v2_error_response(
                ApiError(ErrorCode.UNKNOWN_OP, f"unknown op {op!r}"), request_id
            )
        if op == "hello":
            # Per-connection negotiation: subsequent lines may omit "v".
            connection.version = 2
            return wire.v2_ok_response(
                request_id, versions=list(wire.PROTOCOL_VERSIONS)
            )
        if op == "ping":
            return wire.v2_ok_response(request_id, pong=True)
        if op == "list":
            return wire.v2_ok_response(request_id, tables=self._table_listing())
        if op == "stats":
            return wire.v2_ok_response(request_id, **self._stats_payload())
        # What remains of V2_OPS: "query" and its v1-flavoured alias "ask".
        try:
            query = wire.query_request_from_wire(request)
            query.validate()
        except Exception as error:
            return wire.v2_error_response(self._wire_error(error), request_id)
        result = await self.aquery(query)
        return wire.v2_result_response(result, request_id)

    # -- shared wire helpers ---------------------------------------------------
    def _wire_ask_request(self, request: Dict[str, object]) -> _AskRequest:
        """Validate a v1 ``ask`` body through the shared request codec.

        Only the v1 vocabulary is read — the legacy protocol always
        ignored unknown keys, and that leniency is part of its contract.
        """
        query = QueryRequest.from_dict(
            {
                key: request[key]
                for key in ("question", "table", "k", "prune")
                if key in request
            }
        )
        query.validate()
        return _AskRequest(
            question=query.question,
            ref=query.target if query.resolved_mode == "table" else None,
            k=query.k,
            prune=query.prune,
            backend=query.backend,
        )

    def _wire_error(self, error: Exception) -> ApiError:
        if isinstance(error, ApiError):
            return error
        return classify_exception(error)

    def _table_listing(self) -> List[Dict[str, object]]:
        return wire.table_listing(self.catalog)

    def _stats_payload(self) -> Dict[str, object]:
        self._refresh_pool_counters()
        self._refresh_churn_counters()
        self._refresh_retrieval_counters()
        return wire.stats_payload(self.catalog, self.stats.as_dict())

    def _refresh_pool_counters(self) -> None:
        """Mirror the persistent pools' fault counters into the stats.

        The pools own the ground truth (``respawns``/``downgrades``
        accumulate inside :mod:`repro.perf.pool`); the server copies
        them whenever stats are served so both wire versions and the
        in-process ``stats`` see one consistent story.
        """
        respawns = 0
        downgrades = 0
        for pool_stats in self.engine.pool_stats().values():
            respawns += int(pool_stats.get("respawns", 0) or 0)
            downgrades += int(pool_stats.get("downgrades", 0) or 0)
        self.stats.worker_respawns = respawns
        self.stats.pool_downgrades = downgrades

    def _refresh_churn_counters(self) -> None:
        """Mirror the catalog's lineage counters into the stats.

        The catalog owns the ground truth (``updates``/``retired``
        accumulate inside :class:`TableCatalog`); the server copies them
        whenever stats are served, the same contract as the pool fault
        counters above.
        """
        self.stats.corpus_updates = self.catalog.updates
        self.stats.shards_retired = self.catalog.retired

    def _refresh_retrieval_counters(self) -> None:
        """Mirror the corpus index's scale counters into the stats.

        The index owns the ground truth (incrementally-maintained O(1)
        counters in :meth:`CorpusIndex.stats`); the server copies them
        whenever stats are served, the same contract as the churn
        counters above.
        """
        retrieval = self.catalog.stats()["retrieval"]
        self.stats.retrieval_shards = int(retrieval["shards"])
        self.stats.retrieval_terms = int(retrieval["postings_terms"])
        self.stats.retrieval_postings_bytes = int(retrieval["postings_bytes"])


def answer_payload(answer: ServedAnswer) -> Dict[str, object]:
    """Deprecated: the ad-hoc v1 wire dict for one served answer.

    Use :func:`repro.api.wire.v1_answer_payload` for the frozen v1 shape,
    or :meth:`repro.api.QueryResult.to_dict` (via
    :func:`repro.api.result_from_served`) for the typed v2 envelope.
    """
    warnings.warn(
        "repro.serving.answer_payload is deprecated; use "
        "repro.api.wire.v1_answer_payload (legacy v1 shape) or "
        "repro.api.result_from_served(...).to_dict() (typed v2 envelope)",
        DeprecationWarning,
        stacklevel=2,
    )
    return wire.v1_answer_payload(answer)
