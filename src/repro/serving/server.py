"""The asyncio serving layer over a multi-table catalog.

The paper's deployment is an interactive web service: many users hold
concurrent sessions, each a stream of questions over (possibly
different) tables.  :class:`AsyncServer` is that layer for the
reproduction, built on three pieces that already exist:

* the :class:`~repro.tables.catalog.TableCatalog` routes each question
  to its shard through the content-addressed caches;
* a **micro-batching dispatcher** drains every request that arrived
  while the previous batch was executing and ships the whole batch to a
  worker thread via ``loop.run_in_executor`` — concurrent sessions are
  multiplexed over one :meth:`~repro.tables.catalog.TableCatalog.ask_many`
  call, which in turn fans out over the thread pool or the GIL-free
  process-pool backend (``backend="process"``).  Batches are composed
  with **shard affinity**: routed requests are stably grouped by their
  resolved shard before the pool call, so same-table questions run
  adjacent (process-pool locality) without changing any output;
* answers stay **order-stable and bit-identical** to the sequential
  path: per-question results are deterministic and index-aligned through
  every layer, so interleaving sessions can reorder *scheduling* but
  never *answers* (locked in by ``tests/test_serving.py``).

The event loop never blocks on parsing: it only awaits futures resolved
by the dispatcher.  A TCP front end (JSON-lines protocol, stdlib only)
is provided by :meth:`AsyncServer.serve`::

    {"question": "which country hosted in 2004", "table": "olympics"}
    → {"ok": true, "table": "olympics", "answer": ["Greece"], ...}

Requests without a ``table`` are routed corpus-wide via
:meth:`~repro.tables.catalog.TableCatalog.ask_any`.
"""

from __future__ import annotations

import asyncio
import json
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..interface.nl_interface import InterfaceResponse
from ..tables.catalog import CatalogAnswer, CatalogError, TableCatalog, TableLike

#: What one served question resolves to: a routed single-table response
#: or a corpus-wide ranking.
ServedAnswer = Union[InterfaceResponse, CatalogAnswer]


class ServerClosed(RuntimeError):
    """Raised by in-flight requests when the server shuts down under them."""


@dataclass(frozen=True)
class _AskRequest:
    """One enqueued question (``ref=None`` means corpus-wide routing).

    ``prune`` only applies corpus-wide: ``None`` defers to the catalog's
    routing policy, ``False`` forces the broadcast for this request.
    """

    question: str
    ref: Optional[TableLike]
    k: Optional[int]
    prune: Optional[bool] = None


@dataclass(frozen=True)
class _Failure:
    """A per-request error crossing the executor boundary."""

    error: Exception


@dataclass
class ServerStats:
    """Dispatcher counters (observability for the bench and the CLI)."""

    requests: int = 0
    batches: int = 0
    largest_batch: int = 0
    errors: int = 0
    shard_groups: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "requests": self.requests,
            "batches": self.batches,
            "largest_batch": self.largest_batch,
            "errors": self.errors,
            "shard_groups": self.shard_groups,
            "mean_batch": round(self.requests / self.batches, 2) if self.batches else 0,
        }


class AsyncServer:
    """Serves concurrent sessions over a :class:`TableCatalog`.

    Parameters
    ----------
    catalog:
        The table catalog to serve.  All routing, eviction and cache
        policy lives there; the server adds concurrency only.
    max_workers:
        Fan-out of one batch inside
        :meth:`~repro.tables.catalog.TableCatalog.ask_many`.
    backend:
        ``"thread"`` (shared caches, default) or ``"process"`` (the
        GIL-free pool of :mod:`repro.perf.procpool`) — the pool one
        batch of multiplexed questions runs on.
    max_batch:
        Upper bound on questions merged into one dispatcher batch.

    Use as an async context manager (``async with AsyncServer(...)``) or
    call :meth:`start` / :meth:`stop` explicitly.
    """

    def __init__(
        self,
        catalog: TableCatalog,
        max_workers: int = 8,
        backend: str = "thread",
        max_batch: int = 64,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"AsyncServer needs max_workers >= 1, got {max_workers}")
        if max_batch < 1:
            raise ValueError(f"AsyncServer needs max_batch >= 1, got {max_batch}")
        self.catalog = catalog
        self.max_workers = max_workers
        self.backend = backend
        self.max_batch = max_batch
        self.stats = ServerStats()
        # One dispatcher thread: batches run serially (parallelism lives
        # *inside* a batch, via ask_many's worker pool), so arrivals
        # during a batch accumulate into the next one.
        self._executor: Optional[ThreadPoolExecutor] = None
        self._queue: Optional[asyncio.Queue] = None
        self._dispatcher: Optional[asyncio.Task] = None

    # -- lifecycle -------------------------------------------------------------
    async def start(self) -> "AsyncServer":
        """Start the dispatcher (idempotent; ``ask`` calls it lazily)."""
        if self._dispatcher is None or self._dispatcher.done():
            self._queue = asyncio.Queue()
            self._executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-serve"
            )
            self._dispatcher = asyncio.get_running_loop().create_task(
                self._dispatch_loop()
            )
        return self

    async def stop(self) -> None:
        """Stop the dispatcher, failing any request still in the queue."""
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        if self._queue is not None:
            while True:
                try:
                    _, future = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if not future.done():
                    future.set_exception(ServerClosed("server stopped"))
            self._queue = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    async def __aenter__(self) -> "AsyncServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- the asyncio API -------------------------------------------------------
    async def ask(
        self,
        question: str,
        table: Optional[TableLike] = None,
        k: Optional[int] = None,
        prune: Optional[bool] = None,
    ) -> ServedAnswer:
        """Answer one question; ``table=None`` routes corpus-wide.

        Safe to call from any number of concurrent tasks: requests are
        queued, micro-batched and answered off the event loop.  ``prune``
        (corpus-wide only) overrides the catalog's routing policy per
        request.
        """
        await self.start()
        future = asyncio.get_running_loop().create_future()
        await self._queue.put((_AskRequest(question, table, k, prune), future))
        return await future

    async def ask_gathered(
        self, items: Sequence[Tuple[str, Optional[TableLike]]], k: Optional[int] = None
    ) -> List[ServedAnswer]:
        """Answer many questions concurrently; results index-aligned."""
        return list(
            await asyncio.gather(
                *(self.ask(question, table=ref, k=k) for question, ref in items)
            )
        )

    async def run_session(
        self,
        items: Sequence[Tuple[str, Optional[TableLike]]],
        k: Optional[int] = None,
    ) -> List[ServedAnswer]:
        """One user session: questions asked *in order*, answers aligned.

        Within a session each question awaits the previous answer (the
        interactive regime of the paper); across sessions the dispatcher
        interleaves freely.
        """
        answers: List[ServedAnswer] = []
        for question, ref in items:
            answers.append(await self.ask(question, table=ref, k=k))
        return answers

    # -- dispatcher ------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            first = await self._queue.get()
            batch = [first]
            while len(batch) < self.max_batch:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            requests = [request for request, _ in batch]
            self.stats.requests += len(batch)
            self.stats.batches += 1
            self.stats.largest_batch = max(self.stats.largest_batch, len(batch))
            try:
                outcomes = await loop.run_in_executor(
                    self._executor, self._answer_batch, requests
                )
            except asyncio.CancelledError:
                # stop() cancelled us mid-batch: fail the in-flight
                # futures so their sessions unblock, then shut down.
                for _, future in batch:
                    if not future.done():
                        future.set_exception(ServerClosed("server stopped"))
                raise
            except Exception as error:  # pragma: no cover - defensive
                self.stats.errors += len(batch)
                for _, future in batch:
                    if not future.done():
                        future.set_exception(
                            ServerClosed(f"batch execution failed: {error!r}")
                        )
                continue
            for (_, future), outcome in zip(batch, outcomes):
                if future.done():  # the session was cancelled while parsing
                    continue
                if isinstance(outcome, _Failure):
                    self.stats.errors += 1
                    future.set_exception(outcome.error)
                else:
                    future.set_result(outcome)

    def _answer_batch(self, requests: Sequence[_AskRequest]) -> List[object]:
        """Answer one batch on the dispatcher thread (never the event loop).

        Routed questions are grouped by ``k``, then composed with
        **shard affinity**: within a group, requests are stably sorted by
        their resolved shard's digest before the single
        :meth:`TableCatalog.ask_many` call, so questions targeting the
        same shard land adjacent in the batch — the process-pool backend
        ships each table once per contiguous run, and the thread backend
        hits warm per-table caches back to back.  The sort is stable
        (same-shard requests keep arrival order) and responses are
        re-aligned by queue position, so outputs remain order-stable and
        bit-identical to the unsorted path.  Corpus-wide questions run
        through :meth:`TableCatalog.ask_any` (the retrieve-then-parse
        pipeline).  Per-request errors (unknown refs) fail only their own
        future.
        """
        outcomes: List[object] = [None] * len(requests)
        routed: Dict[Optional[int], List[Tuple[int, _AskRequest]]] = {}
        for position, request in enumerate(requests):
            if request.ref is None:
                try:
                    outcomes[position] = self.catalog.ask_any(
                        request.question,
                        k=request.k,
                        workers=self.max_workers,
                        backend=self.backend,
                        prune=request.prune,
                    )
                except Exception as error:
                    outcomes[position] = _Failure(error)
                continue
            try:
                ref = self.catalog.resolve(request.ref)
            except CatalogError as error:
                outcomes[position] = _Failure(error)
                continue
            routed.setdefault(request.k, []).append(
                (position, _AskRequest(request.question, ref, request.k))
            )
        for k, group in routed.items():
            # Shard-affinity composition: stable sort by resolved digest.
            group.sort(key=lambda pair: pair[1].ref.digest)
            self.stats.shard_groups += len(
                {request.ref.digest for _, request in group}
            )
            try:
                responses = self.catalog.ask_many(
                    [(request.question, request.ref) for _, request in group],
                    k=k,
                    workers=self.max_workers,
                    backend=self.backend,
                )
            except Exception as error:
                for position, _ in group:
                    outcomes[position] = _Failure(error)
                continue
            for (position, _), response in zip(group, responses):
                outcomes[position] = response
        return outcomes

    # -- TCP front end ---------------------------------------------------------
    async def serve(self, host: str = "127.0.0.1", port: int = 8765):
        """Open the JSON-lines TCP endpoint; returns the asyncio server.

        One request per line; see :func:`answer_payload` for the response
        schema.  ``{"op": "list"}`` enumerates the catalog,
        ``{"op": "stats"}`` reports catalog + dispatcher counters.
        """
        await self.start()
        return await asyncio.start_server(self._handle_client, host, port)

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                payload = await self._handle_line(line)
                writer.write(
                    json.dumps(payload, ensure_ascii=False).encode("utf-8") + b"\n"
                )
                await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    async def _handle_line(self, line: bytes) -> Dict[str, object]:
        try:
            request = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return {"ok": False, "error": f"bad request: {error}"}
        if not isinstance(request, dict):
            return {"ok": False, "error": "bad request: expected a JSON object"}
        op = request.get("op", "ask")
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "list":
            return {
                "ok": True,
                "tables": [
                    {
                        "name": ref.name,
                        "digest": ref.digest,
                        "rows": ref.num_rows,
                        "columns": ref.num_columns,
                        "hot": self.catalog.is_hot(ref),
                    }
                    for ref in self.catalog.refs()
                ],
            }
        if op == "stats":
            catalog_stats = dict(self.catalog.stats())
            catalog_stats.pop("parser", None)  # too verbose for the wire
            return {"ok": True, "catalog": catalog_stats, "server": self.stats.as_dict()}
        if op != "ask":
            return {"ok": False, "error": f"unknown op {op!r}"}
        question = request.get("question")
        if not isinstance(question, str) or not question.strip():
            return {"ok": False, "error": "missing question"}
        k = request.get("k")
        if k is not None and not isinstance(k, int):
            return {"ok": False, "error": "k must be an integer"}
        prune = request.get("prune")
        if prune is not None and not isinstance(prune, bool):
            return {"ok": False, "error": "prune must be a boolean"}
        try:
            answer = await self.ask(
                question, table=request.get("table"), k=k, prune=prune
            )
        except CatalogError as error:
            return {"ok": False, "error": str(error)}
        except Exception as error:
            # A failure inside the batch (e.g. a broken process pool) or a
            # shutdown race must answer this request, not silently drop
            # the whole connection mid-protocol.
            return {"ok": False, "error": f"{type(error).__name__}: {error}"}
        return answer_payload(answer)


def answer_payload(answer: ServedAnswer) -> Dict[str, object]:
    """The wire form of one served answer (shared by TCP and the CLI).

    Single-table responses carry the routed table, the top candidate's
    answer/utterance and the candidate count; corpus-wide answers add the
    parsed-shard ranking plus the routing decision (how many shards were
    pruned before parsing, and whether the broadcast fallback fired).
    """
    if isinstance(answer, CatalogAnswer):
        ranked = [
            {
                "table": ref.name,
                "digest": ref.short,
                "answer": list(response.top.answer) if response.top else [],
                "score": response.top.candidate.score if response.top else None,
            }
            for ref, response in answer.ranked
        ]
        routing = answer.routing
        return {
            "ok": True,
            "routed": "any",
            "table": answer.best_ref.name if answer.best_ref else None,
            "answer": list(answer.answer),
            "ranked": ranked,
            "pruned": answer.pruned,
            "shards_parsed": answer.shards_parsed,
            "shards_pruned": answer.shards_pruned,
            "fallback": routing.fallback if routing is not None else False,
        }
    top = answer.top
    return {
        "ok": True,
        "routed": "table",
        "table": answer.table.name,
        "answer": list(top.answer) if top else [],
        "utterance": top.utterance if top else None,
        "candidates": len(answer.explained),
        "parse_seconds": answer.parse_seconds,
    }
