"""Async serving over a multi-table catalog (the deployment front end).

Builds the paper's interactive-service shape out of stdlib asyncio:

* :class:`~repro.serving.server.AsyncServer` — micro-batching dispatcher
  multiplexing concurrent sessions over the thread/process pool backends
  via ``run_in_executor``, plus a JSON-lines TCP endpoint speaking the
  versioned wire protocol of :mod:`repro.api.wire` (legacy v1 lines stay
  byte-compatible; v2 lines carry the typed
  :class:`~repro.api.QueryResult` envelope with per-connection version
  negotiation);
* :func:`~repro.serving.server.answer_payload` — **deprecated** shim for
  the ad-hoc v1 wire dict; use :func:`repro.api.wire.v1_answer_payload`
  or :func:`repro.api.result_from_served` instead;
* :func:`~repro.serving.bench.run_serving_bench` — the serving bench
  harness (sequential vs concurrent sessions vs hot-set eviction, plus
  the ``route`` regime: pruned vs broadcast corpus-wide ``ask_any``).

The routing/eviction substrate lives in :mod:`repro.tables.catalog` and
:mod:`repro.retrieval`; the request/response envelope and the
:class:`~repro.api.ReproEngine` façade live in :mod:`repro.api`; this
package adds concurrency only.
"""

from .bench import (
    SERVE_MODES,
    RouteTiming,
    ServeBenchReport,
    ServeModeTiming,
    run_serving_bench,
    split_sessions,
)
from .server import (
    AsyncServer,
    ServedAnswer,
    ServerClosed,
    ServerStats,
    answer_payload,
)

__all__ = [
    "AsyncServer",
    "ServedAnswer",
    "ServerClosed",
    "ServerStats",
    "answer_payload",
    "SERVE_MODES",
    "RouteTiming",
    "ServeBenchReport",
    "ServeModeTiming",
    "run_serving_bench",
    "split_sessions",
]
