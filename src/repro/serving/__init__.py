"""Async serving over a multi-table catalog (the deployment front end).

Builds the paper's interactive-service shape out of stdlib asyncio:

* :class:`~repro.serving.server.AsyncServer` — micro-batching dispatcher
  multiplexing concurrent sessions over the thread/process pool backends
  via ``run_in_executor``, plus a JSON-lines TCP endpoint;
* :func:`~repro.serving.server.answer_payload` — the wire schema shared
  by the TCP endpoint and the ``repro serve`` CLI;
* :func:`~repro.serving.bench.run_serving_bench` — the serving bench
  harness (sequential vs concurrent sessions vs hot-set eviction, plus
  the ``route`` regime: pruned vs broadcast corpus-wide ``ask_any``).

The routing/eviction substrate lives in :mod:`repro.tables.catalog` and
:mod:`repro.retrieval`; this package adds concurrency only.
"""

from .bench import (
    SERVE_MODES,
    RouteTiming,
    ServeBenchReport,
    ServeModeTiming,
    run_serving_bench,
    split_sessions,
)
from .server import (
    AsyncServer,
    ServedAnswer,
    ServerClosed,
    ServerStats,
    answer_payload,
)

__all__ = [
    "AsyncServer",
    "ServedAnswer",
    "ServerClosed",
    "ServerStats",
    "answer_payload",
    "SERVE_MODES",
    "RouteTiming",
    "ServeBenchReport",
    "ServeModeTiming",
    "run_serving_bench",
    "split_sessions",
]
