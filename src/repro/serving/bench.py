"""The serving bench: sequential catalog loop vs concurrent async sessions.

The parse bench (:mod:`repro.perf.bench`) measures raw parse latency;
this harness measures the *serving* regime on top of it: a multi-table
catalog answering S concurrent sessions.  Three modes:

* ``sequential`` — one :meth:`~repro.tables.catalog.TableCatalog.ask`
  loop over the whole workload: the reference for wall-clock and for
  bit-identity.
* ``async`` — the same workload split round-robin into ``sessions``
  concurrent :meth:`~repro.serving.server.AsyncServer.run_session`
  tasks; the dispatcher micro-batches whatever arrives together.
* ``async_hotset`` (with ``max_hot_shards``) — the async mode under
  memory pressure: the catalog keeps at most N shards hot and evicts
  the rest to the disk cache between questions, measuring the
  eviction/rehydration overhead of the cold-shard path.

Every mode records whether its answers matched the sequential
reference (``identical``); the bench asserts serving never changes
results, only latency.  ``repro bench-serve`` is the CLI entry point
and ``REPRO_BENCH_SCALE`` shrinks the workload the same way it does for
the parse bench.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..tables.catalog import TableCatalog, TableRef
from ..tables.table import Table
from .server import AsyncServer, ServedAnswer

#: The serving bench modes, in reporting order.
SERVE_MODES = ("sequential", "async", "async_hotset")


@dataclass
class ServeModeTiming:
    """Wall-clock and integrity numbers of one serving mode."""

    mode: str
    total_seconds: float
    questions: int
    sessions: int
    identical: bool
    server_stats: Dict[str, int] = field(default_factory=dict)
    catalog_stats: Dict[str, object] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        return self.questions / self.total_seconds if self.total_seconds > 0 else 0.0


@dataclass
class ServeBenchReport:
    """One :class:`ServeModeTiming` per mode plus workload metadata."""

    modes: Dict[str, ServeModeTiming] = field(default_factory=dict)
    questions: int = 0
    tables: int = 0
    sessions: int = 0
    backend: str = "thread"

    def speedup(self, mode: str, baseline: str = "sequential") -> float:
        base = self.modes[baseline].total_seconds
        other = self.modes[mode].total_seconds
        return base / other if other > 0 else float("inf")

    def to_payload(self) -> Dict[str, object]:
        """A JSON-able dict (the ``BENCH_serve.json`` artifact schema)."""
        return {
            "schema": "repro-bench-serve-v1",
            "questions": self.questions,
            "tables": self.tables,
            "sessions": self.sessions,
            "backend": self.backend,
            "modes": {
                name: {
                    "total_seconds": timing.total_seconds,
                    "throughput_qps": timing.throughput,
                    "identical": timing.identical,
                    "server": timing.server_stats,
                    "catalog": timing.catalog_stats,
                }
                for name, timing in self.modes.items()
            },
            "speedups": {
                name: self.speedup(name)
                for name in self.modes
                if name != "sequential" and "sequential" in self.modes
            },
        }

    def rows(self) -> List[List[str]]:
        """Console rows: mode, total, throughput, identical, speedup."""
        rows = []
        for name in SERVE_MODES:
            timing = self.modes.get(name)
            if timing is None:
                continue
            speedup = self.speedup(name) if "sequential" in self.modes else 1.0
            rows.append(
                [
                    name,
                    f"{timing.total_seconds:.3f}s",
                    f"{timing.throughput:.1f} q/s",
                    "yes" if timing.identical else "NO",
                    f"{speedup:.2f}x",
                ]
            )
        return rows


def _answer_signature(answer: ServedAnswer) -> Tuple:
    """A comparable digest of one answer (answers + utterances, no timing)."""
    from ..tables.catalog import CatalogAnswer

    if isinstance(answer, CatalogAnswer):
        return tuple(
            (ref.digest, tuple(resp.top.answer) if resp.top else ())
            for ref, resp in answer.ranked
        )
    return tuple((item.answer, item.utterance) for item in answer.explained)


def split_sessions(workload: Sequence, sessions: int) -> List[List]:
    """Round-robin a workload into per-session question streams.

    Shared by the bench and the ``repro serve --self-test`` CLI; empty
    streams (more sessions than questions) are dropped.
    """
    streams: List[List] = [[] for _ in range(sessions)]
    for position, item in enumerate(workload):
        streams[position % sessions].append(item)
    return [stream for stream in streams if stream]


def _run_async_mode(
    catalog: TableCatalog,
    workload: Sequence[Tuple[str, TableRef]],
    sessions: int,
    workers: int,
    backend: str,
) -> Tuple[float, List[ServedAnswer], Dict[str, int]]:
    """Drive the workload as concurrent sessions; returns flattened answers.

    Answers come back in workload order (sessions are round-robin slices,
    so re-interleaving their per-session lists restores the original
    positions regardless of scheduling).
    """
    streams = split_sessions(workload, sessions)

    async def _drive():
        async with AsyncServer(
            catalog, max_workers=workers, backend=backend
        ) as server:
            per_session = await asyncio.gather(
                *(server.run_session(stream) for stream in streams)
            )
            return per_session, server.stats.as_dict()

    started = time.perf_counter()
    per_session, stats = asyncio.run(_drive())
    elapsed = time.perf_counter() - started

    flattened: List[Optional[ServedAnswer]] = [None] * len(workload)
    cursors = [0] * len(per_session)
    for position in range(len(workload)):
        stream_index = position % len(per_session) if per_session else 0
        flattened[position] = per_session[stream_index][cursors[stream_index]]
        cursors[stream_index] += 1
    return elapsed, flattened, stats


def run_serving_bench(
    pairs: Sequence[Tuple[str, Table]],
    sessions: int = 8,
    workers: int = 8,
    backend: str = "thread",
    repeats: int = 1,
    disk_cache_dir: Optional[str] = None,
    max_hot_shards: Optional[int] = None,
) -> ServeBenchReport:
    """Run the serving harness over a ``(question, table)`` workload.

    Tables are registered once (content-deduplicated by the catalog);
    ``repeats`` replays the workload to expose the warm-cache serving
    regime.  Each mode gets a fresh catalog so no mode inherits another's
    warm state; ``async_hotset`` runs only when both ``max_hot_shards``
    and ``disk_cache_dir`` are given (eviction without a disk store
    cannot drop tables).
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if sessions < 1:
        raise ValueError(f"sessions must be >= 1, got {sessions}")

    def _fresh_catalog(tag: str, hot_limit: Optional[int]) -> Tuple[TableCatalog, List[Tuple[str, TableRef]]]:
        from ..tables.index import clear_index_cache
        from ..tables.schema import clear_schema_cache

        clear_index_cache()
        clear_schema_cache()
        cache_dir = f"{disk_cache_dir}/{tag}" if disk_cache_dir else None
        catalog = TableCatalog(cache_dir=cache_dir, max_hot_shards=hot_limit)
        workload: List[Tuple[str, TableRef]] = []
        for _ in range(repeats):
            for question, table in pairs:
                workload.append((question, catalog.register(table)))
        return catalog, workload

    report = ServeBenchReport(
        questions=len(pairs) * repeats,
        tables=len({table.fingerprint.digest for _, table in pairs}),
        sessions=sessions,
        backend=backend,
    )

    # -- sequential reference --------------------------------------------------
    catalog, workload = _fresh_catalog("sequential", None)
    started = time.perf_counter()
    reference = [catalog.ask(question, ref) for question, ref in workload]
    sequential_seconds = time.perf_counter() - started
    reference_signatures = [_answer_signature(answer) for answer in reference]
    report.modes["sequential"] = ServeModeTiming(
        mode="sequential",
        total_seconds=sequential_seconds,
        questions=len(workload),
        sessions=1,
        identical=True,
        catalog_stats={
            key: value for key, value in catalog.stats().items() if key != "parser"
        },
    )

    # -- concurrent sessions ---------------------------------------------------
    async_modes = [("async", None)]
    if max_hot_shards is not None and disk_cache_dir:
        async_modes.append(("async_hotset", max_hot_shards))
    for mode, hot_limit in async_modes:
        catalog, workload = _fresh_catalog(mode, hot_limit)
        elapsed, answers, server_stats = _run_async_mode(
            catalog, workload, sessions, workers, backend
        )
        identical = [
            _answer_signature(answer) for answer in answers
        ] == reference_signatures
        report.modes[mode] = ServeModeTiming(
            mode=mode,
            total_seconds=elapsed,
            questions=len(workload),
            sessions=sessions,
            identical=identical,
            server_stats=server_stats,
            catalog_stats={
                key: value for key, value in catalog.stats().items() if key != "parser"
            },
        )
    return report
