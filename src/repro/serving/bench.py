"""The serving bench: sequential catalog loop vs concurrent async sessions.

The parse bench (:mod:`repro.perf.bench`) measures raw parse latency;
this harness measures the *serving* regime on top of it: a multi-table
catalog answering S concurrent sessions.  Three modes:

* ``sequential`` — one :meth:`~repro.tables.catalog.TableCatalog.ask`
  loop over the whole workload: the reference for wall-clock and for
  bit-identity.
* ``async`` — the same workload split round-robin into ``sessions``
  concurrent :meth:`~repro.serving.server.AsyncServer.run_session`
  tasks; the dispatcher micro-batches whatever arrives together.
* ``async_hotset`` (with ``max_hot_shards``) — the async mode under
  memory pressure: the catalog keeps at most N shards hot and evicts
  the rest to the disk cache between questions, measuring the
  eviction/rehydration overhead of the cold-shard path.
* ``route`` — the corpus-wide regime: every workload question asked via
  :meth:`~repro.tables.catalog.TableCatalog.ask_any` with pruning
  (retrieve-then-parse) versus the full broadcast, measuring shards
  parsed and asserting the fallback contract (pruned top answer ==
  broadcast top answer whenever the broadcast's top shard is
  retrievable).

Every mode records whether its answers matched the sequential
reference (``identical``); the bench asserts serving never changes
results, only latency.  ``repro bench-serve`` is the CLI entry point
and ``REPRO_BENCH_SCALE`` shrinks the workload the same way it does for
the parse bench.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..perf.bench import quantize_seconds
from ..tables.catalog import TableCatalog, TableRef
from ..tables.table import Table
from .server import AsyncServer, ServedAnswer

#: The serving bench modes, in reporting order.
SERVE_MODES = ("sequential", "async", "async_hotset")


def _percentile(ordered: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample (0 < q <= 1)."""
    if not ordered:
        return 0.0
    rank = max(1, -(-int(q * 1000) * len(ordered) // 1000))  # ceil without float drift
    return ordered[min(len(ordered), rank) - 1]


def latency_summary(per_question_seconds: Sequence[float]) -> Dict[str, float]:
    """p50/p95/p99 of a per-question latency series, in rounded ms.

    The tail percentiles are the serving story (a throughput win that
    costs a 10x p99 is not a win); like
    :func:`~repro.perf.bench.timing_summary` the artifact stores this
    summary, never the raw series.
    """
    ordered = sorted(per_question_seconds)
    return {
        "p50_ms": round(_percentile(ordered, 0.50) * 1000, 1),
        "p95_ms": round(_percentile(ordered, 0.95) * 1000, 1),
        "p99_ms": round(_percentile(ordered, 0.99) * 1000, 1),
    }


@dataclass
class ServeModeTiming:
    """Wall-clock and integrity numbers of one serving mode.

    ``per_question_seconds`` holds each question's *request* latency:
    for the sequential reference that is the bare ``ask`` call, for the
    async modes it is enqueue-to-answer as a session observes it
    (queueing + batching + parse + explain), which is what makes the
    p50/p95/p99 columns comparable across modes.
    """

    mode: str
    total_seconds: float
    questions: int
    sessions: int
    identical: bool
    per_question_seconds: List[float] = field(default_factory=list)
    server_stats: Dict[str, int] = field(default_factory=dict)
    catalog_stats: Dict[str, object] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        return self.questions / self.total_seconds if self.total_seconds > 0 else 0.0

    @property
    def latency(self) -> Dict[str, float]:
        return latency_summary(self.per_question_seconds)


@dataclass
class RouteTiming:
    """Pruned vs broadcast ``ask_any`` over the corpus-wide workload.

    ``top_answers_match`` asserts the fallback contract on every
    question whose broadcast-winning shard was retrievable;
    ``strictly_fewer`` is the acceptance bar — retrieval pruned at least
    one shard's worth of parsing somewhere in the workload.
    """

    questions: int = 0
    shards: int = 0
    broadcast_seconds: float = 0.0
    pruned_seconds: float = 0.0
    broadcast_shards_parsed: int = 0
    pruned_shards_parsed: int = 0
    fallbacks: int = 0
    top_answers_match: bool = True

    @property
    def strictly_fewer(self) -> bool:
        return self.pruned_shards_parsed < self.broadcast_shards_parsed

    @property
    def speedup(self) -> float:
        return (
            self.broadcast_seconds / self.pruned_seconds
            if self.pruned_seconds > 0
            else float("inf")
        )


@dataclass
class ServeBenchReport:
    """One :class:`ServeModeTiming` per mode plus workload metadata."""

    modes: Dict[str, ServeModeTiming] = field(default_factory=dict)
    route: Optional[RouteTiming] = None
    questions: int = 0
    tables: int = 0
    sessions: int = 0
    backend: str = "thread"

    def speedup(self, mode: str, baseline: str = "sequential") -> float:
        base = self.modes[baseline].total_seconds
        other = self.modes[mode].total_seconds
        return base / other if other > 0 else float("inf")

    def to_payload(self) -> Dict[str, object]:
        """A JSON-able dict (the ``BENCH_serve.json`` artifact schema).

        v2 (like the parse artifact's v3) segregated run-to-run noise:
        ``modes``/``route`` carry the structural facts — integrity flags,
        shard/question counts, dispatcher and catalog counters, all
        identical across re-runs of an unchanged workload — and every
        wall-clock-derived number lives quantized under ``timings``.
        v3 adds per-mode request-latency percentiles
        (``latency.p50_ms/p95_ms/p99_ms``) next to the qps numbers, so
        the artifact records the tail cost of batching, not just the
        throughput win.
        """
        payload: Dict[str, object] = {
            "schema": "repro-bench-serve-v3",
            "questions": self.questions,
            "tables": self.tables,
            "sessions": self.sessions,
            "backend": self.backend,
            "modes": {
                name: {
                    "identical": timing.identical,
                    "questions": timing.questions,
                    "sessions": timing.sessions,
                    "server": timing.server_stats,
                    "catalog": timing.catalog_stats,
                }
                for name, timing in self.modes.items()
            },
            "timings": {
                "modes": {
                    name: {
                        "total_seconds": quantize_seconds(timing.total_seconds),
                        "throughput_qps": round(timing.throughput, 1),
                        "latency": timing.latency,
                    }
                    for name, timing in self.modes.items()
                },
                "speedups": {
                    name: round(self.speedup(name), 2)
                    for name in self.modes
                    if name != "sequential" and "sequential" in self.modes
                },
            },
        }
        if self.route is not None:
            payload["route"] = {
                "questions": self.route.questions,
                "shards": self.route.shards,
                "broadcast_shards_parsed": self.route.broadcast_shards_parsed,
                "pruned_shards_parsed": self.route.pruned_shards_parsed,
                "fallbacks": self.route.fallbacks,
                "top_answers_match": self.route.top_answers_match,
                "strictly_fewer": self.route.strictly_fewer,
            }
            payload["timings"]["route"] = {
                "broadcast_seconds": quantize_seconds(self.route.broadcast_seconds),
                "pruned_seconds": quantize_seconds(self.route.pruned_seconds),
                "speedup": round(self.route.speedup, 2),
            }
        return payload

    def rows(self) -> List[List[str]]:
        """Console rows: mode, total, throughput, p50/p95/p99, identical, speedup."""
        rows = []
        for name in SERVE_MODES:
            timing = self.modes.get(name)
            if timing is None:
                continue
            speedup = self.speedup(name) if "sequential" in self.modes else 1.0
            latency = timing.latency
            rows.append(
                [
                    name,
                    f"{timing.total_seconds:.3f}s",
                    f"{timing.throughput:.1f} q/s",
                    f"{latency['p50_ms']:.0f}/{latency['p95_ms']:.0f}"
                    f"/{latency['p99_ms']:.0f}ms",
                    "yes" if timing.identical else "NO",
                    f"{speedup:.2f}x",
                ]
            )
        return rows

    def route_rows(self) -> List[List[str]]:
        """Console rows for the route mode: regime, total, shards parsed."""
        if self.route is None:
            return []
        route = self.route
        return [
            [
                "broadcast",
                f"{route.broadcast_seconds:.3f}s",
                f"{route.broadcast_shards_parsed} shards parsed",
                "-",
                "1.00x",
            ],
            [
                "pruned",
                f"{route.pruned_seconds:.3f}s",
                f"{route.pruned_shards_parsed} shards parsed",
                "yes" if route.top_answers_match else "NO",
                f"{route.speedup:.2f}x",
            ],
        ]


def _answer_signature(answer: ServedAnswer) -> Tuple:
    """A comparable digest of one answer (answers + utterances, no timing)."""
    from ..tables.catalog import CatalogAnswer

    if isinstance(answer, CatalogAnswer):
        return tuple(
            (ref.digest, tuple(resp.top.answer) if resp.top else ())
            for ref, resp in answer.ranked
        )
    return tuple((item.answer, item.utterance) for item in answer.explained)


def split_sessions(workload: Sequence, sessions: int) -> List[List]:
    """Round-robin a workload into per-session question streams.

    Shared by the bench and the ``repro serve --self-test`` CLI; empty
    streams (more sessions than questions) are dropped.
    """
    streams: List[List] = [[] for _ in range(sessions)]
    for position, item in enumerate(workload):
        streams[position % sessions].append(item)
    return [stream for stream in streams if stream]


def _run_async_mode(
    catalog: TableCatalog,
    workload: Sequence[Tuple[str, TableRef]],
    sessions: int,
    workers: int,
    backend: str,
) -> Tuple[float, List[ServedAnswer], List[float], Dict[str, int]]:
    """Drive the workload as concurrent sessions; returns flattened answers.

    Answers (and their per-question request latencies — enqueue to
    answered, as the session observes it) come back in workload order
    (sessions are round-robin slices, so re-interleaving their
    per-session lists restores the original positions regardless of
    scheduling).
    """
    streams = split_sessions(workload, sessions)

    async def _timed_session(server, stream):
        answers: List[Tuple[ServedAnswer, float]] = []
        for question, ref in stream:
            asked = time.perf_counter()
            answer = await server.ask(question, table=ref)
            answers.append((answer, time.perf_counter() - asked))
        return answers

    async def _drive():
        async with AsyncServer(
            catalog, max_workers=workers, backend=backend
        ) as server:
            per_session = await asyncio.gather(
                *(_timed_session(server, stream) for stream in streams)
            )
            return per_session, server.stats.as_dict()

    started = time.perf_counter()
    per_session, stats = asyncio.run(_drive())
    elapsed = time.perf_counter() - started

    flattened: List[Optional[ServedAnswer]] = [None] * len(workload)
    latencies: List[float] = [0.0] * len(workload)
    cursors = [0] * len(per_session)
    for position in range(len(workload)):
        stream_index = position % len(per_session) if per_session else 0
        answer, latency = per_session[stream_index][cursors[stream_index]]
        flattened[position] = answer
        latencies[position] = latency
        cursors[stream_index] += 1
    return elapsed, flattened, latencies, stats


def _run_route_mode(
    pairs: Sequence[Tuple[str, Table]],
    workers: int,
    backend: str,
    fresh_catalog,
) -> RouteTiming:
    """Pruned vs broadcast ``ask_any`` over every distinct workload question.

    Each regime runs on its own fresh (cold) catalog for a fair timing
    comparison.  For every question the fallback contract is checked:
    whenever the broadcast's top shard was retrievable (a routing
    candidate), the pruned pipeline must produce the same top shard and
    top answer.
    """
    questions: List[str] = []
    for question, _ in pairs:
        if question not in questions:
            questions.append(question)

    broadcast_catalog, _ = fresh_catalog("route_broadcast", None)
    started = time.perf_counter()
    broadcast = [
        broadcast_catalog.ask_any(
            question, workers=workers, backend=backend, prune=False
        )
        for question in questions
    ]
    broadcast_seconds = time.perf_counter() - started

    pruned_catalog, _ = fresh_catalog("route_pruned", None)
    started = time.perf_counter()
    pruned = [
        pruned_catalog.ask_any(
            question, workers=workers, backend=backend, prune=True
        )
        for question in questions
    ]
    pruned_seconds = time.perf_counter() - started

    timing = RouteTiming(
        questions=len(questions),
        shards=len(broadcast_catalog),
        broadcast_seconds=broadcast_seconds,
        pruned_seconds=pruned_seconds,
        broadcast_shards_parsed=sum(a.shards_parsed for a in broadcast),
        pruned_shards_parsed=sum(a.shards_parsed for a in pruned),
        fallbacks=sum(1 for a in pruned if a.routing.fallback),
    )
    for broadcast_answer, pruned_answer in zip(broadcast, pruned):
        top_ref = broadcast_answer.best_ref
        if top_ref is None:
            continue
        if not pruned_answer.routing.is_candidate(top_ref.digest):
            continue  # the carved-out case: an unretrievable broadcast winner
        if (
            pruned_answer.best_ref != top_ref
            or pruned_answer.answer != broadcast_answer.answer
        ):
            timing.top_answers_match = False
    return timing


def run_serving_bench(
    pairs: Sequence[Tuple[str, Table]],
    sessions: int = 8,
    workers: int = 8,
    backend: str = "thread",
    repeats: int = 1,
    disk_cache_dir: Optional[str] = None,
    max_hot_shards: Optional[int] = None,
    route: bool = True,
) -> ServeBenchReport:
    """Run the serving harness over a ``(question, table)`` workload.

    Tables are registered once (content-deduplicated by the catalog);
    ``repeats`` replays the workload to expose the warm-cache serving
    regime.  Each mode gets a fresh catalog so no mode inherits another's
    warm state; ``async_hotset`` runs only when both ``max_hot_shards``
    and ``disk_cache_dir`` are given (eviction without a disk store
    cannot drop tables); ``route`` adds the corpus-wide pruned-vs-
    broadcast :meth:`~repro.tables.catalog.TableCatalog.ask_any` regime.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if sessions < 1:
        raise ValueError(f"sessions must be >= 1, got {sessions}")

    def _fresh_catalog(tag: str, hot_limit: Optional[int]) -> Tuple[TableCatalog, List[Tuple[str, TableRef]]]:
        from ..tables.index import clear_index_cache
        from ..tables.schema import clear_schema_cache

        clear_index_cache()
        clear_schema_cache()
        cache_dir = f"{disk_cache_dir}/{tag}" if disk_cache_dir else None
        catalog = TableCatalog(cache_dir=cache_dir, max_hot_shards=hot_limit)
        workload: List[Tuple[str, TableRef]] = []
        for _ in range(repeats):
            for question, table in pairs:
                workload.append((question, catalog.register(table)))
        return catalog, workload

    report = ServeBenchReport(
        questions=len(pairs) * repeats,
        tables=len({table.fingerprint.digest for _, table in pairs}),
        sessions=sessions,
        backend=backend,
    )

    # -- sequential reference --------------------------------------------------
    catalog, workload = _fresh_catalog("sequential", None)
    reference: List[ServedAnswer] = []
    sequential_latencies: List[float] = []
    started = time.perf_counter()
    for question, ref in workload:
        asked = time.perf_counter()
        reference.append(catalog.ask(question, ref))
        sequential_latencies.append(time.perf_counter() - asked)
    sequential_seconds = time.perf_counter() - started
    reference_signatures = [_answer_signature(answer) for answer in reference]
    report.modes["sequential"] = ServeModeTiming(
        mode="sequential",
        total_seconds=sequential_seconds,
        questions=len(workload),
        sessions=1,
        identical=True,
        per_question_seconds=sequential_latencies,
        catalog_stats={
            key: value for key, value in catalog.stats().items() if key != "parser"
        },
    )

    # -- concurrent sessions ---------------------------------------------------
    async_modes = [("async", None)]
    if max_hot_shards is not None and disk_cache_dir:
        async_modes.append(("async_hotset", max_hot_shards))
    for mode, hot_limit in async_modes:
        catalog, workload = _fresh_catalog(mode, hot_limit)
        elapsed, answers, latencies, server_stats = _run_async_mode(
            catalog, workload, sessions, workers, backend
        )
        identical = [
            _answer_signature(answer) for answer in answers
        ] == reference_signatures
        report.modes[mode] = ServeModeTiming(
            mode=mode,
            total_seconds=elapsed,
            questions=len(workload),
            sessions=sessions,
            identical=identical,
            per_question_seconds=latencies,
            server_stats=server_stats,
            catalog_stats={
                key: value for key, value in catalog.stats().items() if key != "parser"
            },
        )

    # -- corpus-wide routing (pruned vs broadcast ask_any) ---------------------
    if route:
        report.route = _run_route_mode(pairs, workers, backend, _fresh_catalog)
    return report
