"""Discovery corpora: hundreds-to-thousands of confusable tables.

The table-discovery workload (question → gold table over a large corpus,
the open-table-discovery task) needs a corpus that is *hard* in the ways
real ones are: many tables per domain with **overlapping titles**
("Olympics medal table #1" … "#83"), **near-duplicate schemas** (the
same columns, some renamed to a human paraphrase), **shared vocabulary**
(every same-domain table draws from the same value pools), and
**Zipf-skewed popularity** (a few tables attract most of the questions,
a long tail attracts almost none).  :func:`build_discovery_corpus`
produces exactly that, deterministically from a seed, with every
question gold-labeled by the fingerprint digest of the table it was
generated from — the label ``repro bench-discovery`` measures router
recall@k against.

Distinctness is guaranteed, not probable: table *names* are unique by
construction (a per-domain ordinal), and table *content fingerprints*
are deduplicated explicitly — a generated table whose digest collides
with an earlier one has a key cell deterministically perturbed until the
digest is fresh.  Without that loop, near-duplicate schemas over small
shared pools really do collide at corpus scale, and a collision
registers as one shard under two names (or a spurious
``NAME_CONFLICT``), silently shrinking the corpus the bench thinks it
measures.  The regression test lives in ``tests/test_dataset_corpus.py``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..tables.table import Table
from .domains import DOMAINS, Domain
from .generator import TableGenerator
from .questions import GeneratedQuestion, QuestionGenerator


@dataclass(frozen=True)
class DiscoveryQuestion:
    """One gold-labeled discovery probe: the question names no table."""

    question: str
    gold_name: str
    gold_digest: str
    template: str
    domain: str


@dataclass(frozen=True)
class CorpusConfig:
    """Knobs of :func:`build_discovery_corpus` (all deterministic).

    ``num_tables`` / ``num_questions`` are the full-scale sizes; they are
    multiplied by ``scale`` (default: the ``REPRO_BENCH_SCALE``
    environment knob via :func:`~repro.perf.bench.bench_scale`) and
    floored so a 0.1x CI smoke run still exercises a multi-domain
    corpus.  ``near_duplicate_rate`` is the fraction of tables generated
    under a schema variant (one non-key column renamed to a paraphrase);
    ``zipf_exponent`` shapes question popularity (weight of the
    rank-``r`` table is ``1 / r**zipf_exponent``).
    """

    num_tables: int = 500
    num_questions: int = 300
    seed: int = 2019
    near_duplicate_rate: float = 0.5
    zipf_exponent: float = 1.1
    paraphrase_rate: float = 0.45
    min_tables: int = 8
    min_questions: int = 8
    scale: Optional[float] = None


@dataclass
class DiscoveryCorpus:
    """The generated corpus: registration-ready tables + gold questions."""

    tables: List[Table]
    questions: List[DiscoveryQuestion]
    #: digest → number of questions drawn for that table (the realized
    #: Zipf skew; most tables are 0 here by design).
    popularity: Dict[str, int] = field(default_factory=dict)
    #: How many generated tables needed the digest-dedup perturbation.
    digest_collisions_repaired: int = 0

    @property
    def names(self) -> List[str]:
        return [table.name for table in self.tables]


def _schema_variant(domain: Domain, rng: random.Random) -> Domain:
    """A near-duplicate of ``domain``: one non-key column renamed.

    The rename uses the column's own paraphrase pool (title-cased), so
    variant tables look exactly like the confusable real-world case —
    the same data under a header a human would also have written
    ("Medal Count" for ``Total``).  Key columns are never renamed: the
    question generator anchors on them.
    """
    renameable = [
        spec
        for spec in domain.columns
        if spec.name != domain.key_column and spec.paraphrases
    ]
    if not renameable:
        return domain
    victim = rng.choice(renameable)
    new_name = rng.choice(victim.paraphrases).title()
    if new_name == victim.name or any(
        spec.name == new_name for spec in domain.columns
    ):
        return domain
    columns = tuple(
        replace(spec, name=new_name) if spec.name == victim.name else spec
        for spec in domain.columns
    )
    return replace(domain, columns=columns)


def _raw_rows(table: Table) -> List[List[str]]:
    return [[cell.display() for cell in record.cells] for record in table.records]


def _rebuild(table: Table, domain: Domain, name: str, rows=None) -> Table:
    return Table(
        columns=table.columns,
        rows=rows if rows is not None else _raw_rows(table),
        name=name,
        date_columns=[
            spec.name for spec in domain.columns if spec.kind == "year"
        ],
    )


def _dedupe_digest(
    table: Table, domain: Domain, seen: set, ordinal: int
) -> Tuple[Table, int]:
    """Return a table with a digest not in ``seen`` (the collision bugfix).

    Fingerprints hash columns and cells only — never the name — so two
    near-duplicate tables with different names can still collide.  A
    colliding table gets its first key cell deterministically suffixed
    (attempt counter, so regeneration is reproducible) until the digest
    is fresh.  Returns the table plus how many repairs it took.
    """
    repairs = 0
    while table.fingerprint.digest in seen:
        repairs += 1
        rows = _raw_rows(table)
        key_index = (
            table.columns.index(domain.key_column)
            if domain.key_column in table.columns
            else 0
        )
        rows[0][key_index] = f"{rows[0][key_index]} v{ordinal}.{repairs}"
        table = _rebuild(table, domain, table.name, rows=rows)
    return table, repairs


def build_discovery_corpus(config: CorpusConfig = CorpusConfig()) -> DiscoveryCorpus:
    """Generate the discovery corpus described by ``config``.

    Deterministic per config: the same seed always yields the same
    tables (digests included) and the same questions, which is what lets
    ``BENCH_discovery.json`` regenerations diff meaningfully.
    """
    from ..perf.bench import bench_scale

    scale = config.scale if config.scale is not None else bench_scale()
    num_tables = max(config.min_tables, int(round(config.num_tables * scale)))
    num_questions = max(
        config.min_questions, int(round(config.num_questions * scale))
    )

    rng = random.Random(config.seed)
    table_gen = TableGenerator(seed=config.seed)
    question_gen = QuestionGenerator(
        seed=config.seed, paraphrase_rate=config.paraphrase_rate
    )

    tables: List[Table] = []
    table_domains: List[Domain] = []
    seen_digests: set = set()
    per_domain_ordinal: Dict[str, int] = {}
    collisions = 0
    for index in range(num_tables):
        base = DOMAINS[index % len(DOMAINS)]
        domain = (
            _schema_variant(base, rng)
            if rng.random() < config.near_duplicate_rate
            else base
        )
        ordinal = per_domain_ordinal.get(base.name, 0) + 1
        per_domain_ordinal[base.name] = ordinal
        # Overlapping titles by design: every same-domain table shares
        # the title tokens, only the ordinal differs — and the ordinal
        # makes the *name* unique, so only content can ever collide.
        name = f"{base.title} #{ordinal}"
        table = _rebuild(table_gen.generate(domain), domain, name)
        table, repairs = _dedupe_digest(table, domain, seen_digests, index)
        collisions += repairs
        seen_digests.add(table.fingerprint.digest)
        tables.append(table)
        table_domains.append(domain)

    # Zipf-skewed popularity: ranks are assigned by a seeded shuffle (so
    # popularity is independent of generation order) and table rank r
    # draws questions with weight 1/r^s.
    rank_order = list(range(len(tables)))
    rng.shuffle(rank_order)
    weights = [0.0] * len(tables)
    for rank, table_index in enumerate(rank_order, start=1):
        weights[table_index] = 1.0 / (rank ** config.zipf_exponent)

    questions: List[DiscoveryQuestion] = []
    popularity: Dict[str, int] = {}
    attempts = 0
    max_attempts = num_questions * 20
    while len(questions) < num_questions and attempts < max_attempts:
        attempts += 1
        table_index = rng.choices(range(len(tables)), weights=weights)[0]
        table = tables[table_index]
        domain = table_domains[table_index]
        generated: List[GeneratedQuestion] = question_gen.generate(
            table, domain, 1
        )
        if not generated:
            continue
        digest = table.fingerprint.digest
        questions.append(
            DiscoveryQuestion(
                question=generated[0].question,
                gold_name=table.name,
                gold_digest=digest,
                template=generated[0].template,
                domain=domain.name,
            )
        )
        popularity[digest] = popularity.get(digest, 0) + 1

    return DiscoveryCorpus(
        tables=tables,
        questions=questions,
        popularity=popularity,
        digest_collisions_repaired=collisions,
    )
