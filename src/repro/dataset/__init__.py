"""Synthetic WikiTableQuestions-like benchmark (substitution for the real data)."""

from .domains import DOMAINS, DOMAINS_BY_NAME, ColumnSpec, Domain, get_domain
from .generator import TableGenerator, generate_table
from .questions import GeneratedQuestion, QuestionGenerator
from .dataset import (
    Dataset,
    DatasetConfig,
    DatasetExample,
    build_dataset,
    dataset_statistics,
)
from .splits import Split, repeated_splits, split_by_tables, split_examples
from .corpus import (
    CorpusConfig,
    DiscoveryCorpus,
    DiscoveryQuestion,
    build_discovery_corpus,
)
from .join_corpus import (
    FAMILIES,
    JoinCorpus,
    JoinCorpusConfig,
    JoinFamily,
    JoinQuestion,
    build_join_corpus,
)
from . import vocab

__all__ = [
    "Domain",
    "ColumnSpec",
    "DOMAINS",
    "DOMAINS_BY_NAME",
    "get_domain",
    "TableGenerator",
    "generate_table",
    "QuestionGenerator",
    "GeneratedQuestion",
    "Dataset",
    "DatasetConfig",
    "DatasetExample",
    "build_dataset",
    "dataset_statistics",
    "Split",
    "split_by_tables",
    "split_examples",
    "repeated_splits",
    "CorpusConfig",
    "DiscoveryCorpus",
    "DiscoveryQuestion",
    "build_discovery_corpus",
    "FAMILIES",
    "JoinCorpus",
    "JoinCorpusConfig",
    "JoinFamily",
    "JoinQuestion",
    "build_join_corpus",
    "vocab",
]
