"""Train/test splitting utilities.

WikiTableQuestions splits by *table*: 20% of the tables (and every question
asked on them) form the test set, so the parser is always evaluated on
relations and entities it has never seen (Section 6.1).  The reproduction
does the same, plus the repeated train/dev splits used for the Table 9
feedback-training experiment.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .dataset import Dataset, DatasetExample


@dataclass(frozen=True)
class Split:
    """A train/test (or train/dev) partition of a dataset."""

    train: Dataset
    test: Dataset

    @property
    def sizes(self) -> Tuple[int, int]:
        return (len(self.train), len(self.test))


def split_by_tables(dataset: Dataset, test_fraction: float = 0.2, seed: int = 0) -> Split:
    """Partition a dataset so that train and test tables are disjoint."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = random.Random(seed)
    table_names = sorted({example.table.name for example in dataset.examples})
    rng.shuffle(table_names)
    test_count = max(1, round(len(table_names) * test_fraction))
    test_tables = set(table_names[:test_count])

    train_examples, test_examples = [], []
    for example in dataset.examples:
        if example.table.name in test_tables:
            test_examples.append(example)
        else:
            train_examples.append(example)
    return Split(
        train=_dataset_from(train_examples),
        test=_dataset_from(test_examples),
    )


def split_examples(
    dataset: Dataset, first_count: int, seed: int = 0
) -> Tuple[Dataset, Dataset]:
    """Random example-level split: the first ``first_count`` examples vs. the rest.

    Used for carving the annotated pool into train/dev (the paper's 1,650 /
    418 partition of its 2,068 annotations).
    """
    rng = random.Random(seed)
    indices = list(range(len(dataset.examples)))
    rng.shuffle(indices)
    first = dataset.subset(indices[:first_count])
    second = dataset.subset(indices[first_count:])
    return first, second


def repeated_splits(
    dataset: Dataset, first_count: int, repetitions: int = 3, seed: int = 0
) -> List[Tuple[Dataset, Dataset]]:
    """The "three different train/dev splits" protocol of Section 7.3."""
    return [
        split_examples(dataset, first_count, seed=seed + repetition)
        for repetition in range(repetitions)
    ]


def _dataset_from(examples: Sequence[DatasetExample]) -> Dataset:
    tables = list({example.table.name: example.table for example in examples}.values())
    return Dataset(examples=list(examples), tables=tables)
