"""Domain schemas for the synthetic table corpus.

Each :class:`Domain` describes one family of Wikipedia-like tables: its
columns (with their types and value pools), which column identifies a row
(the *key* column questions refer to), and the natural-language
paraphrases crowd workers typically use for each column.  The paraphrases
matter: questions that name a column by a synonym ("medal count" for the
``Total`` column) are exactly the ones a lexical parser gets wrong, which
keeps the reproduction's baseline parser at a WikiTableQuestions-like
operating point instead of solving the synthetic corpus outright.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from . import vocab


@dataclass(frozen=True)
class ColumnSpec:
    """One column of a domain schema.

    ``kind`` is one of:

    * ``"key"`` — a textual identifier, distinct per row (Nation, Ship, ...),
    * ``"category"`` — a textual attribute with repeated values (Position, Lake, ...),
    * ``"number"`` — an integer drawn from ``(low, high)``,
    * ``"year"`` — a year drawn from ``(low, high)``, distinct per row,
    * ``"sequence"`` — 1, 2, 3, ... in row order (Rank, No., ...),
    * ``"date"`` — a textual date such as ``June 8, 2013``.
    """

    name: str
    kind: str
    pool: Tuple[str, ...] = ()
    low: int = 0
    high: int = 100
    paraphrases: Tuple[str, ...] = ()

    @property
    def is_numeric(self) -> bool:
        return self.kind in ("number", "year", "sequence")

    @property
    def is_textual(self) -> bool:
        return self.kind in ("key", "category", "date")


@dataclass(frozen=True)
class Domain:
    """A family of tables sharing a schema."""

    name: str
    title: str
    columns: Tuple[ColumnSpec, ...]
    key_column: str
    min_rows: int = 8
    max_rows: int = 14

    def column(self, name: str) -> ColumnSpec:
        for spec in self.columns:
            if spec.name == name:
                return spec
        raise KeyError(name)

    @property
    def column_names(self) -> List[str]:
        return [spec.name for spec in self.columns]

    @property
    def numeric_columns(self) -> List[str]:
        return [spec.name for spec in self.columns if spec.is_numeric]

    @property
    def category_columns(self) -> List[str]:
        return [spec.name for spec in self.columns if spec.kind == "category"]

    @property
    def year_columns(self) -> List[str]:
        return [spec.name for spec in self.columns if spec.kind == "year"]

    def paraphrase_of(self, column: str, index: int = 0) -> str:
        spec = self.column(column)
        options = (column.lower(),) + spec.paraphrases
        return options[index % len(options)]


def _spec(name, kind, pool=(), low=0, high=100, paraphrases=()):
    return ColumnSpec(
        name=name, kind=kind, pool=tuple(pool), low=low, high=high,
        paraphrases=tuple(paraphrases),
    )


DOMAINS: Tuple[Domain, ...] = (
    Domain(
        name="medal_tally",
        title="Pacific Games medal table",
        key_column="Nation",
        columns=(
            _spec("Rank", "sequence", paraphrases=("position", "place")),
            _spec("Nation", "key", pool=vocab.NATIONS, paraphrases=("country", "team")),
            _spec("Gold", "number", low=0, high=130, paraphrases=("gold medals",)),
            _spec("Silver", "number", low=0, high=110, paraphrases=("silver medals",)),
            _spec("Bronze", "number", low=0, high=90, paraphrases=("bronze medals",)),
            _spec("Total", "number", low=10, high=300, paraphrases=("total medals", "medal count")),
        ),
    ),
    Domain(
        name="olympics",
        title="Olympic games host cities",
        key_column="City",
        columns=(
            _spec("Year", "year", low=1896, high=2016, paraphrases=("edition",)),
            _spec("Country", "category", pool=vocab.NATIONS, paraphrases=("host country", "nation")),
            _spec("City", "key", pool=vocab.CITIES, paraphrases=("host city", "venue")),
            _spec("Athletes", "number", low=200, high=12000, paraphrases=("participants", "competitors")),
            _spec("Events", "number", low=40, high=330, paraphrases=("competitions",)),
        ),
    ),
    Domain(
        name="football_roster",
        title="National team appearances",
        key_column="Name",
        columns=(
            _spec("Name", "key", pool=vocab.PEOPLE, paraphrases=("player",)),
            _spec("Position", "category", pool=vocab.POSITIONS, paraphrases=("role",)),
            _spec("Games", "number", low=1, high=25, paraphrases=("appearances", "matches", "caps")),
            _spec("Goals", "number", low=0, high=15, paraphrases=("scores",)),
            _spec("Club", "category", pool=vocab.CLUBS, paraphrases=("team",)),
        ),
    ),
    Domain(
        name="tv_episodes",
        title="Television season episode list",
        key_column="Episode",
        columns=(
            _spec("No.", "sequence", paraphrases=("episode number",)),
            _spec("Episode", "key", pool=vocab.EPISODES, paraphrases=("title", "show")),
            _spec("Air date", "date", paraphrases=("broadcast date",)),
            _spec("Rating", "number", low=1, high=10, paraphrases=("score",)),
            _spec("Viewers", "number", low=1, high=30, paraphrases=("audience", "viewership")),
        ),
    ),
    Domain(
        name="shipwrecks",
        title="Great Lakes storm shipwrecks",
        key_column="Ship",
        columns=(
            _spec("Ship", "key", pool=vocab.SHIP_NAMES, paraphrases=("vessel name",)),
            _spec("Vessel", "category", pool=vocab.VESSEL_TYPES, paraphrases=("type",)),
            _spec("Lake", "category", pool=vocab.LAKES, paraphrases=("location",)),
            _spec("Lives lost", "number", low=0, high=30, paraphrases=("casualties", "deaths")),
            _spec("Tonnage", "number", low=300, high=8000, paraphrases=("weight",)),
        ),
    ),
    Domain(
        name="tennis_results",
        title="Career tournament finals",
        key_column="Tournament",
        columns=(
            _spec("Result", "category", pool=vocab.RESULTS, paraphrases=("outcome",)),
            _spec("Year", "year", low=1995, high=2018, paraphrases=("season",)),
            _spec("Tournament", "key", pool=vocab.TOURNAMENTS, paraphrases=("event", "championship")),
            _spec("Surface", "category", pool=vocab.SURFACES, paraphrases=("court",)),
            _spec("Prize", "number", low=10000, high=150000, paraphrases=("prize money", "purse")),
        ),
    ),
    Domain(
        name="grand_prix",
        title="Grand Prix entrants",
        key_column="Driver",
        columns=(
            _spec("No.", "sequence", paraphrases=("car number",)),
            _spec("Driver", "key", pool=vocab.PEOPLE, paraphrases=("pilot",)),
            _spec("Constructor", "category", pool=vocab.CONSTRUCTORS, paraphrases=("manufacturer", "chassis")),
            _spec("Engine size", "number", low=1000, high=5000, paraphrases=("displacement",)),
            _spec("Points", "number", low=0, high=60, paraphrases=("score",)),
        ),
    ),
    Domain(
        name="festivals",
        title="Annual festivals calendar",
        key_column="Festival",
        columns=(
            _spec("Date", "date", paraphrases=("when",)),
            _spec("Festival", "key", pool=vocab.FESTIVALS, paraphrases=("event",)),
            _spec("Location", "category", pool=vocab.CITIES, paraphrases=("city", "venue")),
            _spec("Awards", "category", pool=vocab.AWARDS, paraphrases=("prize",)),
            _spec("Attendance", "number", low=500, high=90000, paraphrases=("visitors", "crowd")),
        ),
    ),
    Domain(
        name="elections",
        title="Municipal election results",
        key_column="Candidate",
        columns=(
            _spec("Year", "year", low=1990, high=2018, paraphrases=("election year",)),
            _spec("Candidate", "key", pool=vocab.PEOPLE, paraphrases=("politician", "nominee")),
            _spec("Party", "category", pool=vocab.PARTIES, paraphrases=("affiliation",)),
            _spec("Votes", "number", low=1000, high=90000, paraphrases=("ballots", "vote count")),
            _spec("Percentage", "number", low=1, high=60, paraphrases=("share", "vote share")),
        ),
    ),
    Domain(
        name="club_seasons",
        title="Club season history",
        key_column="Coach",
        columns=(
            _spec("Year", "year", low=1995, high=2012, paraphrases=("season",)),
            _spec("League", "category", pool=vocab.LEAGUES, paraphrases=("division",)),
            _spec("Coach", "key", pool=vocab.PEOPLE, paraphrases=("manager", "head coach")),
            _spec("Attendance", "number", low=3000, high=9000, paraphrases=("crowd", "average attendance")),
            _spec("Open Cup", "category", pool=vocab.CUP_ROUNDS, paraphrases=("cup result",)),
            _spec("Wins", "number", low=0, high=30, paraphrases=("victories",)),
        ),
    ),
    Domain(
        name="athletics",
        title="Championship appearances",
        key_column="Competition",
        columns=(
            _spec("Year", "year", low=1980, high=2016, paraphrases=("season",)),
            _spec("Competition", "key", pool=vocab.COMPETITIONS, paraphrases=("event", "meet")),
            _spec("Venue", "category", pool=vocab.CITIES, paraphrases=("host city", "location")),
            _spec("Position", "number", low=1, high=20, paraphrases=("place", "finish")),
            _spec("Time", "number", low=10, high=240, paraphrases=("result", "duration")),
        ),
    ),
    Domain(
        name="city_statistics",
        title="Largest cities by population",
        key_column="City",
        columns=(
            _spec("Rank", "sequence", paraphrases=("position",)),
            _spec("City", "key", pool=vocab.CITIES, paraphrases=("municipality",)),
            _spec("Country", "category", pool=vocab.NATIONS, paraphrases=("nation",)),
            _spec("Population", "number", low=100000, high=9000000, paraphrases=("inhabitants", "residents")),
            _spec("Area", "number", low=50, high=3000, paraphrases=("size", "surface")),
        ),
    ),
)

DOMAINS_BY_NAME: Dict[str, Domain] = {domain.name: domain for domain in DOMAINS}


def get_domain(name: str) -> Domain:
    """Look up a domain by name."""
    try:
        return DOMAINS_BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown domain {name!r}; available: {sorted(DOMAINS_BY_NAME)}"
        ) from None
