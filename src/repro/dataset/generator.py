"""Synthetic table generation.

Tables mimic the structural constraints of WikiTableQuestions (at least 8
rows and 5 columns, mixed textual/numeric/date columns, repeated values in
category columns) while drawing their content from the vocabulary pools of
:mod:`repro.dataset.vocab` through the schemas of
:mod:`repro.dataset.domains`.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..tables.table import Table
from . import vocab
from .domains import DOMAINS, ColumnSpec, Domain


class TableGenerator:
    """Generates random tables for the synthetic corpus."""

    def __init__(self, seed: int = 0) -> None:
        self._random = random.Random(seed)

    # -- public API -------------------------------------------------------------
    def generate(self, domain: Domain, num_rows: Optional[int] = None) -> Table:
        """Generate one table for ``domain``."""
        rng = self._random
        rows_count = num_rows or rng.randint(domain.min_rows, domain.max_rows)
        columns = domain.column_names
        cells: List[List[object]] = [[] for _ in range(rows_count)]

        for spec in domain.columns:
            values = self._column_values(spec, rows_count)
            for row_index in range(rows_count):
                cells[row_index].append(values[row_index])

        name = f"{domain.title} #{rng.randint(1, 9999)}"
        return Table(
            columns=columns,
            rows=cells,
            name=name,
            date_columns=[spec.name for spec in domain.columns if spec.kind == "year"],
        )

    def generate_corpus(
        self,
        num_tables: int,
        domains: Optional[Sequence[Domain]] = None,
    ) -> List[Table]:
        """Generate ``num_tables`` tables cycling over the available domains."""
        domains = list(domains or DOMAINS)
        tables = []
        for index in range(num_tables):
            domain = domains[index % len(domains)]
            tables.append(self.generate(domain))
        return tables

    # -- per-column value generation ------------------------------------------------
    def _column_values(self, spec: ColumnSpec, rows_count: int) -> List[object]:
        rng = self._random
        if spec.kind == "key":
            pool = list(spec.pool)
            rng.shuffle(pool)
            values = pool[:rows_count]
            # Pools are large enough for every domain, but stay safe.
            while len(values) < rows_count:
                values.append(f"{rng.choice(spec.pool)} {len(values)}")
            return values
        if spec.kind == "category":
            # Repeated values on purpose: count/most-common questions need them.
            distinct = rng.randint(2, max(2, min(len(spec.pool), max(3, rows_count // 2))))
            choices = rng.sample(list(spec.pool), distinct)
            return [rng.choice(choices) for _ in range(rows_count)]
        if spec.kind == "number":
            return [rng.randint(spec.low, spec.high) for _ in range(rows_count)]
        if spec.kind == "year":
            span = list(range(spec.low, spec.high + 1))
            rng.shuffle(span)
            years = sorted(span[:rows_count])
            while len(years) < rows_count:
                years.append(years[-1] + 1)
            return years
        if spec.kind == "sequence":
            return list(range(1, rows_count + 1))
        if spec.kind == "date":
            dates = []
            for _ in range(rows_count):
                month = rng.choice(vocab.MONTH_NAMES)
                day = rng.randint(1, 28)
                year = rng.randint(1995, 2018)
                dates.append(f"{month} {day}, {year}")
            return dates
        raise ValueError(f"unknown column kind {spec.kind!r}")


def generate_table(domain: Domain, seed: int = 0, num_rows: Optional[int] = None) -> Table:
    """Generate a single table (convenience wrapper)."""
    return TableGenerator(seed=seed).generate(domain, num_rows=num_rows)
