"""Vocabulary pools for the synthetic WikiTableQuestions-like corpus.

The real benchmark covers thousands of Wikipedia tables from hundreds of
domains; the synthetic substitute draws its cell values from the pools
below.  The pools are intentionally larger than any single generated table
so that the train/test split (which is disjoint on tables) exposes the
parser to unseen entities — the property behind the paper's 56% correctness
bound (Section 7.2).
"""

from __future__ import annotations

NATIONS = [
    "New Caledonia", "Tahiti", "Papua New Guinea", "Fiji", "Samoa", "Nauru",
    "Tonga", "Vanuatu", "Greece", "France", "China", "Brazil", "Japan",
    "Kenya", "Norway", "Canada", "Australia", "Germany", "Italy", "Spain",
    "Mexico", "Argentina", "Egypt", "India", "Poland", "Sweden", "Austria",
    "Croatia", "Serbia", "Portugal", "Morocco", "Nigeria", "Chile", "Peru",
    "Hungary", "Finland", "Iceland", "Ireland", "Scotland", "Wales",
]

CITIES = [
    "Athens", "Paris", "London", "Beijing", "Rio de Janeiro", "Tokyo",
    "Sydney", "Barcelona", "Rome", "Moscow", "Seoul", "Montreal", "Munich",
    "Helsinki", "Amsterdam", "Stockholm", "Oslo", "Lisbon", "Madrid",
    "Atlanta", "Mexico City", "Los Angeles", "St. Louis", "Antwerp",
    "Melbourne", "Calgary", "Sarajevo", "Nagano", "Turin", "Vancouver",
]

PEOPLE = [
    "Erich Burgener", "Charly In-Albon", "Andy Egli", "Marcel Koller",
    "Heinz Hermann", "Lucien Favre", "Roger Berbig", "Beat Rietmann",
    "Rene Botteron", "Roger Wehrli", "Gabriel Gervais", "Mauricio Vincello",
    "Tatiana Abramenko", "Myriam Asfry", "Jeff Lastennet", "Luigi Arcangeli",
    "Louis Chiron", "Maria Santos", "Elena Petrova", "Kofi Mensah",
    "Hiro Tanaka", "Anders Berg", "Carlos Ruiz", "Amara Diallo",
    "Jonas Keller", "Petra Novak", "Sven Olsen", "Lea Moreau",
    "Tomas Marek", "Ingrid Dahl", "Pablo Fernandez", "Yuki Sato",
    "Nadia Hassan", "Viktor Lindqvist", "Omar Farouk", "Greta Nilsson",
]

CLUBS = [
    "Servette", "Grasshoppers", "FC St. Gallen", "FC Nuremburg", "Toulouse",
    "Team Penske", "Red Star", "Dynamo", "United", "Rovers", "Athletic",
    "Wanderers", "Olympic", "Sporting", "Racing", "City", "Rangers",
    "Albion", "Thistle", "Harriers",
]

POSITIONS = ["GK", "DF", "MF", "FW"]

LAKES = [
    "Lake Huron", "Lake Erie", "Lake Michigan", "Lake Superior",
    "Lake Ontario", "Lake Champlain", "Lake Geneva", "Lake Garda",
]

VESSEL_TYPES = ["Steamer", "Barge", "Lightship", "Schooner", "Tug", "Yacht", "Ferry"]

SHIP_NAMES = [
    "Argus", "Hydrus", "Plymouth", "Issac M. Scott", "Henry B. Smith",
    "Lightship No. 82", "Sally", "Caprice", "Eleanor", "USS Lawrence",
    "USS Macdonough", "Jule", "Wexford", "Regina", "Leafield", "Halsted",
    "Nordmeer", "Cedarville", "Daniel J. Morrell", "Carl D. Bradley",
]

EPISODES = [
    "Pilot", "The Return", "Homecoming", "Crossroads", "The Storm",
    "Revelations", "The Long Night", "Aftermath", "New Beginnings",
    "The Reckoning", "Shadows", "The Visit", "Breaking Point", "Echoes",
    "The Last Dance", "Turning Tides", "Cold Front", "The Gift",
    "Second Chances", "Full Circle",
]

TOURNAMENTS = [
    "Australian Open", "Roland Garros", "Wimbledon", "US Open",
    "Madrid Masters", "Rome Masters", "Miami Open", "Indian Wells",
    "Halle Open", "Queen's Club", "Basel Indoors", "Vienna Open",
    "Cincinnati Masters", "Canada Masters", "Shanghai Masters",
    "Paris Masters", "Dubai Championships", "Acapulco Open",
]

SURFACES = ["Hard", "Clay", "Grass", "Carpet"]

RESULTS = ["Winner", "Runner-up", "Semifinalist", "Quarterfinalist"]

FESTIVALS = [
    "Harvest Festival", "Film Festival", "Jazz Festival", "Book Fair",
    "Light Festival", "Folk Festival", "Food Festival", "Street Art Festival",
    "Winter Carnival", "Spring Parade", "Lantern Festival", "Comedy Festival",
    "Dance Biennale", "Science Fair", "Puppet Festival", "Poetry Week",
]

MONTH_NAMES = [
    "January", "February", "March", "April", "May", "June",
    "July", "August", "September", "October", "November", "December",
]

PARTIES = [
    "Progressive Party", "Unity Party", "Reform Party", "Liberal Alliance",
    "National Front", "Green Coalition", "Labor Union", "Civic Platform",
]

CONSTRUCTORS = [
    "Ferrari", "Maserati", "Alfa Romeo", "Bugatti", "Mercedes", "Delage",
    "Talbot", "Vanwall", "Cooper", "Lotus", "Brabham", "Tyrrell",
]

COMPETITIONS = [
    "World Championship", "Continental Cup", "National League",
    "Open Championship", "Grand Prix", "Invitational", "Super Cup",
    "Masters Series", "Winter Games", "Summer Games", "Diamond League",
    "Challenge Trophy", "Union Cup", "Memorial Meeting", "Indoor Classic",
    "Coastal Marathon",
]

AWARDS = ["Gold Award", "Silver Award", "Bronze Award", "Honorable Mention", "Jury Prize"]

LEAGUES = [
    "USL A-League", "USL First Division", "Premier Division", "Second Division",
    "National Conference", "Regional League",
]

CUP_ROUNDS = [
    "Did not qualify", "1st Round", "2nd Round", "3rd Round", "4th Round",
    "Quarterfinals", "Semifinals", "Final",
]
