"""Dataset assembly: examples, corpora and conversions.

A dataset example mirrors one WikiTableQuestions entry: an NL question, its
table, and the answer — plus, because the corpus is synthetic, the gold
lambda DCS query, which is what lets the reproduction evaluate *query*
correctness automatically (Section 7.1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..tables.table import Table
from ..tables.values import Value
from ..dcs.ast import Query
from ..dcs.errors import DCSError
from ..dcs.executor import execute
from ..dcs.sexpr import from_sexpr, to_sexpr
from ..parser.evaluation import EvaluationExample
from ..parser.training import TrainingExample
from .domains import DOMAINS, Domain
from .generator import TableGenerator
from .questions import GeneratedQuestion, QuestionGenerator


@dataclass(frozen=True)
class DatasetExample:
    """One (question, table, gold query, gold answer) record."""

    example_id: str
    question: str
    table: Table
    gold_query: Query
    gold_answer: Tuple[Value, ...]
    domain: str
    template: str

    def to_training_example(self, annotated: bool = False) -> TrainingExample:
        """View this example as a training example.

        ``annotated`` controls whether the gold query is exposed as an
        annotation (question-query supervision) or withheld (weak,
        answer-only supervision) — the distinction at the heart of the
        paper's Table 9 experiment.
        """
        return TrainingExample(
            question=self.question,
            table=self.table,
            answer=self.gold_answer,
            annotated_queries=(self.gold_query,) if annotated else (),
        )

    def to_evaluation_example(self) -> EvaluationExample:
        return EvaluationExample(
            question=self.question,
            table=self.table,
            gold_query=self.gold_query,
            gold_answer=self.gold_answer,
        )


@dataclass
class Dataset:
    """A list of examples plus the tables they were asked on."""

    examples: List[DatasetExample] = field(default_factory=list)
    tables: List[Table] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.examples)

    def __iter__(self):
        return iter(self.examples)

    def by_template(self) -> Dict[str, List[DatasetExample]]:
        grouped: Dict[str, List[DatasetExample]] = {}
        for example in self.examples:
            grouped.setdefault(example.template, []).append(example)
        return grouped

    def by_table(self) -> Dict[str, List[DatasetExample]]:
        grouped: Dict[str, List[DatasetExample]] = {}
        for example in self.examples:
            grouped.setdefault(example.table.name, []).append(example)
        return grouped

    def training_examples(self, annotated: bool = False) -> List[TrainingExample]:
        return [example.to_training_example(annotated=annotated) for example in self.examples]

    def evaluation_examples(self) -> List[EvaluationExample]:
        return [example.to_evaluation_example() for example in self.examples]

    def subset(self, indices: Sequence[int]) -> "Dataset":
        chosen = [self.examples[i] for i in indices]
        tables = list({id(example.table): example.table for example in chosen}.values())
        return Dataset(examples=chosen, tables=tables)


@dataclass
class DatasetConfig:
    """Knobs for the synthetic corpus builder."""

    num_tables: int = 40
    questions_per_table: int = 8
    seed: int = 7
    paraphrase_rate: float = 0.45
    domains: Tuple[Domain, ...] = DOMAINS


def build_dataset(config: Optional[DatasetConfig] = None) -> Dataset:
    """Build a synthetic WikiTableQuestions-like dataset.

    Tables are generated per domain, questions per table; every question's
    gold query is executed and questions with empty or failing answers are
    discarded (the real benchmark only keeps answerable questions).
    """
    config = config or DatasetConfig()
    table_generator = TableGenerator(seed=config.seed)
    question_generator = QuestionGenerator(
        seed=config.seed + 1, paraphrase_rate=config.paraphrase_rate
    )
    dataset = Dataset()
    domains = list(config.domains)
    for table_index in range(config.num_tables):
        domain = domains[table_index % len(domains)]
        table = table_generator.generate(domain)
        dataset.tables.append(table)
        generated = question_generator.generate(table, domain, config.questions_per_table)
        for question_index, item in enumerate(generated):
            try:
                answer = execute(item.query, table).answer_values()
            except DCSError:
                continue
            if not answer:
                continue
            example_id = f"nt-{table_index:04d}-{question_index:02d}"
            dataset.examples.append(
                DatasetExample(
                    example_id=example_id,
                    question=item.question,
                    table=table,
                    gold_query=item.query,
                    gold_answer=tuple(answer),
                    domain=domain.name,
                    template=item.template,
                )
            )
    return dataset


def dataset_statistics(dataset: Dataset) -> Dict[str, float]:
    """Summary statistics in the spirit of the WikiTableQuestions description."""
    if not dataset.examples:
        return {"examples": 0, "tables": 0}
    distinct_headers = set()
    for table in dataset.tables:
        distinct_headers.update(table.columns)
    rows = [table.num_rows for table in dataset.tables]
    return {
        "examples": len(dataset.examples),
        "tables": len(dataset.tables),
        "templates": len(dataset.by_template()),
        "distinct_headers": len(distinct_headers),
        "mean_rows": sum(rows) / len(rows),
        "min_rows": min(rows),
        "max_rows": max(rows),
    }
