"""The multi-table question tier: gold-labeled shard pairs that join.

The discovery corpus (:mod:`repro.dataset.corpus`) measures *single*-shard
retrieval — every question is answerable from one gold table.  This tier
generates the complement: **fact/dimension table pairs** sharing a
string-typed join key, plus questions whose answer lives in the fact table
but whose anchor entity lives only in the dimension table — no single
shard can answer them.  Each question is gold-labeled with *both* shard
digests, so ``repro bench-join`` can score the
:class:`~repro.retrieval.router.ShardSetRouter`'s proposals as join
recall@k and gate every composed answer against the two-table SQL oracle.

Join keys are deliberately same-typed strings on both sides: sqlite's
static column typing never equates ``TEXT`` with ``REAL`` in a JOIN, so a
cross-type key would make the oracle disagree with ``values_equal`` by
construction.  The cross-type re-parse bridges (``"2004"`` ↔ ``2004``)
are executor semantics, covered by unit tests, not by this bench.

Confusability is intentional, mirroring the discovery corpus: all fact
tables of one family share the target header, sibling pairs share the
group-value pool, and key entities repeat across pairs — so proposing the
gold *pair* requires actual set-cover reasoning, not string lookup.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..tables.table import Table
from . import vocab


def _scaled(full: int, floor: int, scale: Optional[float]) -> int:
    """``full`` × the bench scale factor, floored at ``floor``."""
    # Imported lazily: repro.perf imports repro.dcs at package init.
    from ..perf.bench import bench_scale

    factor = scale if scale is not None else bench_scale()
    return max(floor, int(round(full * factor)))

#: Group-value pools, disjoint from every key pool so an anchor entity
#: never collides with a join-key cell of an unrelated family.
CONTINENTS = [
    "Oceania", "Europe", "Asia", "Americas", "Africa",
    "Scandinavia", "Caribbean", "Balkans",
]

REGIONS = [
    "Northern Province", "Southern Province", "Eastern Province",
    "Western Province", "Central Valley", "Coastal Strip",
    "Highland District", "Lowland District",
]


@dataclass(frozen=True)
class JoinFamily:
    """One fact/dimension template a pair is stamped from."""

    slug: str
    key_column: str
    key_pool: Tuple[str, ...]
    target_column: str
    extra_column: str
    group_column: str
    group_pool: Tuple[str, ...]
    #: A constant-valued fact column whose value is unique per pair within
    #: the family — the retrieval signal that identifies the gold *fact*
    #: shard (the target header alone is shared by every sibling).
    context_column: str
    context_pool: Tuple[str, ...]
    fact_name: str
    dim_name: str


#: The four families; pair ``i`` uses ``FAMILIES[i % 4]``.
FAMILIES: Tuple[JoinFamily, ...] = (
    JoinFamily(
        slug="medals",
        key_column="Nation",
        key_pool=tuple(vocab.NATIONS),
        target_column="Total",
        extra_column="Golds",
        group_column="Continent",
        group_pool=tuple(CONTINENTS),
        context_column="Competition",
        context_pool=tuple(vocab.COMPETITIONS[:6]),
        fact_name="medals",
        dim_name="regions",
    ),
    JoinFamily(
        slug="census",
        key_column="City",
        key_pool=tuple(vocab.CITIES),
        target_column="Population",
        extra_column="Elevation",
        group_column="Region",
        group_pool=tuple(REGIONS),
        context_column="Census",
        context_pool=tuple(vocab.FESTIVALS[:6]),
        fact_name="census",
        dim_name="districts",
    ),
    JoinFamily(
        slug="scoring",
        key_column="Player",
        key_pool=tuple(vocab.PEOPLE),
        target_column="Goals",
        extra_column="Assists",
        group_column="Club",
        group_pool=tuple(vocab.CLUBS[:8]),
        context_column="Tournament",
        context_pool=tuple(vocab.TOURNAMENTS[:6]),
        fact_name="scoring",
        dim_name="rosters",
    ),
    JoinFamily(
        slug="fleet",
        key_column="Ship",
        key_pool=tuple(vocab.SHIP_NAMES),
        target_column="Tonnage",
        extra_column="Crew",
        group_column="Lake",
        group_pool=tuple(vocab.LAKES),
        context_column="Registry",
        context_pool=tuple(vocab.LEAGUES[:6]),
        fact_name="fleet",
        dim_name="moorings",
    ),
)

#: Question phrasings; every one contains the (lowercased) target header
#: and the anchor group value — the two lexical anchors the
#: :class:`~repro.compose.planner.JoinPlanner` needs.
QUESTION_TEMPLATES = (
    "what is the {target} for entries in {anchor} at the {context}",
    "which {target} values from the {context} belong to {anchor}",
    "list the {target} of the {context} rows in {anchor}",
)


@dataclass(frozen=True)
class JoinQuestion:
    """A multi-table question gold-labeled with its shard *pair*."""

    question: str
    #: Gold fact shard — holds the target column the answer comes from.
    primary_digest: str
    primary_name: str
    #: Gold dimension shard — holds the anchor entity.
    secondary_digest: str
    secondary_name: str
    #: Shared join-key column name (same header on both sides).
    join_column: str
    target_column: str
    anchor_value: str
    family: str
    #: Expected answer values (fact-row order), computed by the generator
    #: from its own join — independent of the executor under test.
    answer: Tuple[str, ...] = ()

    @property
    def gold_digests(self) -> frozenset:
        return frozenset((self.primary_digest, self.secondary_digest))


@dataclass(frozen=True)
class JoinCorpusConfig:
    """Knobs for the join corpus; scaled like the discovery corpus."""

    num_pairs: int = 12
    num_questions: int = 36
    rows_per_table: int = 10
    groups_per_pair: int = 3
    seed: int = 2019
    #: Scale floors: below these the bench stops being a bench.
    min_pairs: int = 4
    min_questions: int = 8
    #: Workload multiplier; ``None`` = read ``REPRO_BENCH_SCALE``.
    scale: Optional[float] = None


@dataclass
class JoinCorpus:
    """The generated tier: interleaved tables, names, gold questions."""

    tables: List[Table] = field(default_factory=list)
    names: List[str] = field(default_factory=list)
    pairs: List[Tuple[str, str]] = field(default_factory=list)
    questions: List[JoinQuestion] = field(default_factory=list)
    digest_collisions_repaired: int = 0


def _build_pair(
    family: JoinFamily, ordinal: int, rng: random.Random, config: JoinCorpusConfig
) -> Tuple[Table, Table, Dict[str, List[Tuple[str, str]]], str]:
    """One fact/dimension pair, its group → [(key, value)] map, context."""
    rows = min(config.rows_per_table, len(family.key_pool))
    keys = rng.sample(list(family.key_pool), rows)
    # Sibling pairs of one family take *overlapping slices* of the group
    # pool: each shares one boundary group with the next sibling, so a
    # fraction of anchors is genuinely ambiguous across pairs (the set
    # router must rank, not look up) while most identify their pair.
    sibling = ordinal // len(FAMILIES)
    pool = list(family.group_pool)
    span = min(config.groups_per_pair, len(pool))
    offset = (sibling * max(1, span - 1)) % len(pool)
    groups = [pool[(offset + j) % len(pool)] for j in range(span)]
    context = family.context_pool[sibling % len(family.context_pool)]

    fact_rows: List[List[str]] = []
    dim_rows: List[List[str]] = []
    membership: Dict[str, List[Tuple[str, str]]] = {group: [] for group in groups}
    for position, key in enumerate(keys):
        target = str(rng.randrange(5, 995))
        extra = str(rng.randrange(0, 60))
        group = groups[position % len(groups)]
        fact_rows.append([key, target, extra, context])
        dim_rows.append([key, group])
        membership[group].append((key, target))

    fact = Table(
        columns=[
            family.key_column,
            family.target_column,
            family.extra_column,
            family.context_column,
        ],
        rows=fact_rows,
        name=f"{family.fact_name}_{ordinal:03d}",
    )
    dim = Table(
        columns=[family.key_column, family.group_column],
        rows=dim_rows,
        name=f"{family.dim_name}_{ordinal:03d}",
    )
    return fact, dim, membership, context


def _perturb(table: Table, rng: random.Random) -> Table:
    """Rebuild with one numeric cell nudged — the digest-collision repair."""
    rows = [list(row) for row in table.rows]
    row = rng.randrange(len(rows))
    try:
        rows[row][1] = str(int(rows[row][1]) + rng.randrange(1, 7))
    except ValueError:
        rows[row][-1] = rows[row][-1] + " II"
    return Table(columns=list(table.columns), rows=rows, name=table.name)


def build_join_corpus(config: Optional[JoinCorpusConfig] = None) -> JoinCorpus:
    """Generate the multi-table tier; deterministic in ``config.seed``."""
    config = config or JoinCorpusConfig()
    num_pairs = _scaled(config.num_pairs, config.min_pairs, config.scale)
    num_questions = _scaled(
        config.num_questions, config.min_questions, config.scale
    )
    rng = random.Random(config.seed)

    corpus = JoinCorpus()
    seen_digests: set = set()
    memberships: List[Dict[str, List[Tuple[str, str]]]] = []
    families: List[JoinFamily] = []
    contexts: List[str] = []
    for ordinal in range(num_pairs):
        family = FAMILIES[ordinal % len(FAMILIES)]
        fact, dim, membership, context = _build_pair(family, ordinal, rng, config)
        for table in (fact, dim):
            while table.fingerprint.digest in seen_digests:
                corpus.digest_collisions_repaired += 1
                table = _perturb(table, rng)
            seen_digests.add(table.fingerprint.digest)
            corpus.tables.append(table)
            corpus.names.append(table.name)
        fact, dim = corpus.tables[-2], corpus.tables[-1]
        corpus.pairs.append((fact.fingerprint.digest, dim.fingerprint.digest))
        memberships.append(membership)
        families.append(family)
        contexts.append(context)

    for index in range(num_questions):
        pair_index = index % num_pairs
        family = families[pair_index]
        membership = memberships[pair_index]
        fact_digest, dim_digest = corpus.pairs[pair_index]
        fact = corpus.tables[2 * pair_index]
        dim = corpus.tables[2 * pair_index + 1]
        populated = [g for g in sorted(membership) if membership[g]]
        anchor = rng.choice(populated)
        template = QUESTION_TEMPLATES[index % len(QUESTION_TEMPLATES)]
        question = template.format(
            target=family.target_column.lower(),
            anchor=anchor,
            context=contexts[pair_index],
        )
        answer = tuple(value for _, value in membership[anchor])
        corpus.questions.append(
            JoinQuestion(
                question=question,
                primary_digest=fact_digest,
                primary_name=fact.name,
                secondary_digest=dim_digest,
                secondary_name=dim.name,
                join_column=family.key_column,
                target_column=family.target_column,
                anchor_value=anchor,
                family=family.slug,
                answer=answer,
            )
        )
    return corpus
