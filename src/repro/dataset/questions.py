"""Question templates with gold lambda DCS queries.

The WikiTableQuestions benchmark contains crowd-written questions that
require lookups, aggregation, superlatives, arithmetic, unions and
intersections (paper Table 1).  This module generates the synthetic
counterpart: each template produces a question string and the gold lambda
DCS query expressing it, grounded in a concrete generated table.

Two properties of the real benchmark are deliberately preserved:

* **compositionality** — templates cover the full operator inventory of the
  paper's Table 10 (the same inventory the parser's grammar and the
  explanation generator support);
* **lexical mismatch** — a configurable fraction of questions refers to
  columns by a paraphrase ("medal count" instead of ``Total``), which is
  the main reason real parsers rank wrong candidates first.  This keeps the
  baseline parser at a realistic operating point rather than solving the
  synthetic data outright.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..tables.schema import infer_schema
from ..tables.table import Table
from ..dcs import builder as q
from ..dcs.ast import Query, SuperlativeKind
from .domains import Domain


@dataclass(frozen=True)
class GeneratedQuestion:
    """A question, its gold query and the template that produced it."""

    question: str
    query: Query
    template: str


class QuestionGenerator:
    """Generates questions with gold queries for generated tables."""

    def __init__(self, seed: int = 0, paraphrase_rate: float = 0.45) -> None:
        self._random = random.Random(seed)
        self.paraphrase_rate = paraphrase_rate
        self._templates: List[Tuple[str, Callable[[Table, Domain], Optional[GeneratedQuestion]]]] = [
            ("lookup_value", self._lookup_value),
            ("lookup_reverse", self._lookup_reverse),
            ("superlative_entity", self._superlative_entity),
            ("superlative_value", self._superlative_value),
            ("conditional_extreme_year", self._conditional_extreme_year),
            ("count_condition", self._count_condition),
            ("count_comparison", self._count_comparison),
            ("difference_values", self._difference_values),
            ("difference_occurrences", self._difference_occurrences),
            ("compare_entities", self._compare_entities),
            ("neighbor", self._neighbor),
            ("most_common", self._most_common),
            ("last_row", self._last_row),
            ("total_sum", self._total_sum),
            ("average", self._average),
            ("intersection", self._intersection),
            ("union_count", self._union_count),
            ("conditional_superlative_entity", self._conditional_superlative_entity),
        ]

    # -- public API ----------------------------------------------------------------
    @property
    def template_names(self) -> List[str]:
        return [name for name, _build in self._templates]

    def generate(self, table: Table, domain: Domain, count: int) -> List[GeneratedQuestion]:
        """Generate up to ``count`` distinct questions for one table."""
        questions: List[GeneratedQuestion] = []
        seen_texts = set()
        attempts = 0
        template_cycle = list(self._templates)
        self._random.shuffle(template_cycle)
        while len(questions) < count and attempts < count * 12:
            name, build = template_cycle[attempts % len(template_cycle)]
            attempts += 1
            generated = build(table, domain)
            if generated is None:
                continue
            if generated.question in seen_texts:
                continue
            seen_texts.add(generated.question)
            questions.append(generated)
        return questions

    # -- helpers --------------------------------------------------------------------
    def _column_phrase(self, domain: Domain, column: str) -> str:
        """The column name as the question refers to it (header or paraphrase)."""
        spec = domain.column(column)
        if spec.paraphrases and self._random.random() < self.paraphrase_rate:
            return self._random.choice(list(spec.paraphrases))
        return column.lower()

    def _entities(self, table: Table, domain: Domain, count: int = 1) -> Optional[List[str]]:
        values = [value.display() for value in table.column_values(domain.key_column)]
        distinct = list(dict.fromkeys(values))
        if len(distinct) < count:
            return None
        return self._random.sample(distinct, count)

    def _category_column(self, table: Table, domain: Domain, need_repeats: bool = False) -> Optional[str]:
        candidates = []
        for column in domain.category_columns:
            values = [value.display() for value in table.column_values(column)]
            distinct = len(set(values))
            if distinct < 2:
                continue
            if need_repeats and distinct == len(values):
                continue
            candidates.append(column)
        if not candidates:
            return None
        return self._random.choice(candidates)

    def _category_values(self, table: Table, column: str, count: int) -> Optional[List[str]]:
        values = list(dict.fromkeys(value.display() for value in table.column_values(column)))
        if len(values) < count:
            return None
        return self._random.sample(values, count)

    def _numeric_column(self, table: Table, domain: Domain, exclude: Sequence[str] = ()) -> Optional[str]:
        schema = infer_schema(table)
        candidates = [
            column
            for column in schema.numeric_columns
            if column not in exclude and domain.column(column).kind != "sequence"
        ]
        if not candidates:
            candidates = [column for column in schema.numeric_columns if column not in exclude]
        if not candidates:
            return None
        return self._random.choice(candidates)

    def _numeric_threshold(self, table: Table, column: str) -> Optional[float]:
        values = [value.as_number() for value in table.column_values(column) if value.is_numeric]
        if len(values) < 3:
            return None
        values.sort()
        return float(int(values[len(values) // 2]))

    def _pick(self, *options: str) -> str:
        return self._random.choice(list(options))

    # -- templates --------------------------------------------------------------------
    def _lookup_value(self, table: Table, domain: Domain) -> Optional[GeneratedQuestion]:
        entities = self._entities(table, domain)
        target = self._numeric_column(table, domain)
        if not entities or target is None:
            return None
        entity = entities[0]
        phrase = self._column_phrase(domain, target)
        question = self._pick(
            f"What was the {phrase} of {entity}?",
            f"What is the {phrase} for {entity}?",
            f"How many {phrase} did {entity} have?",
        )
        query = q.column_values(target, q.column_records(domain.key_column, entity))
        return GeneratedQuestion(question, query, "lookup_value")

    def _lookup_reverse(self, table: Table, domain: Domain) -> Optional[GeneratedQuestion]:
        target = self._numeric_column(table, domain)
        if target is None:
            return None
        values = [value for value in table.column_values(target) if value.is_numeric]
        if not values:
            return None
        value = self._random.choice(values)
        key_phrase = self._column_phrase(domain, domain.key_column)
        target_phrase = self._column_phrase(domain, target)
        question = self._pick(
            f"Which {key_phrase} had a {target_phrase} of {value.display()}?",
            f"Which {key_phrase} recorded {value.display()} in {target_phrase}?",
        )
        query = q.column_values(
            domain.key_column, q.column_records(target, value.display())
        )
        return GeneratedQuestion(question, query, "lookup_reverse")

    def _superlative_entity(self, table: Table, domain: Domain) -> Optional[GeneratedQuestion]:
        target = self._numeric_column(table, domain)
        if target is None:
            return None
        highest = self._random.random() < 0.5
        phrase = self._column_phrase(domain, target)
        key_phrase = self._column_phrase(domain, domain.key_column)
        adjective = "highest" if highest else "lowest"
        most_least = "most" if highest else "least"
        question = self._pick(
            f"Which {key_phrase} had the {adjective} {phrase}?",
            f"Who had the {most_least} {phrase}?",
            f"Which {key_phrase} ranks {adjective} in {phrase}?",
        )
        records = (
            q.argmax_records(target) if highest else q.argmin_records(target)
        )
        query = q.column_values(domain.key_column, records)
        return GeneratedQuestion(question, query, "superlative_entity")

    def _superlative_value(self, table: Table, domain: Domain) -> Optional[GeneratedQuestion]:
        target = self._numeric_column(table, domain)
        if target is None:
            return None
        highest = self._random.random() < 0.5
        phrase = self._column_phrase(domain, target)
        adjective = "highest" if highest else "lowest"
        question = self._pick(
            f"What was the {adjective} {phrase}?",
            f"What is the {adjective} {phrase} recorded?",
        )
        values = q.column_values(target, q.all_records())
        query = q.max_(values) if highest else q.min_(values)
        return GeneratedQuestion(question, query, "superlative_value")

    def _conditional_extreme_year(self, table: Table, domain: Domain) -> Optional[GeneratedQuestion]:
        if not domain.year_columns:
            return None
        year_column = domain.year_columns[0]
        category = self._category_column(table, domain)
        if category is None:
            return None
        values = self._category_values(table, category, 1)
        if not values:
            return None
        value = values[0]
        last = self._random.random() < 0.5
        year_phrase = self._column_phrase(domain, year_column)
        category_phrase = self._column_phrase(domain, category)
        position = "last" if last else "first"
        question = self._pick(
            f"What was the {position} {year_phrase} with {category_phrase} {value}?",
            f"When did {value} {position} appear as the {category_phrase}?",
        )
        values_query = q.column_values(year_column, q.column_records(category, value))
        query = q.max_(values_query) if last else q.min_(values_query)
        return GeneratedQuestion(question, query, "conditional_extreme_year")

    def _count_condition(self, table: Table, domain: Domain) -> Optional[GeneratedQuestion]:
        category = self._category_column(table, domain)
        if category is None:
            return None
        values = self._category_values(table, category, 1)
        if not values:
            return None
        value = values[0]
        category_phrase = self._column_phrase(domain, category)
        question = self._pick(
            f"How many rows have {value} as the {category_phrase}?",
            f"How many times does {value} appear in {category_phrase}?",
            f"What is the total number of entries with {category_phrase} {value}?",
        )
        query = q.count(q.column_records(category, value))
        return GeneratedQuestion(question, query, "count_condition")

    def _count_comparison(self, table: Table, domain: Domain) -> Optional[GeneratedQuestion]:
        target = self._numeric_column(table, domain)
        if target is None:
            return None
        threshold = self._numeric_threshold(table, target)
        if threshold is None:
            return None
        phrase = self._column_phrase(domain, target)
        above = self._random.random() < 0.5
        direction = "more than" if above else "less than"
        question = self._pick(
            f"How many rows have a {phrase} of {direction} {int(threshold)}?",
            f"How many entries recorded {direction} {int(threshold)} in {phrase}?",
        )
        op = ">" if above else "<"
        query = q.count(q.comparison_records(target, op, threshold))
        return GeneratedQuestion(question, query, "count_comparison")

    def _difference_values(self, table: Table, domain: Domain) -> Optional[GeneratedQuestion]:
        entities = self._entities(table, domain, 2)
        target = self._numeric_column(table, domain)
        if not entities or target is None:
            return None
        left, right = entities
        phrase = self._column_phrase(domain, target)
        question = self._pick(
            f"What was the difference in {phrase} between {left} and {right}?",
            f"By how much does the {phrase} of {left} differ from {right}?",
        )
        query = q.value_difference(target, domain.key_column, left, right)
        return GeneratedQuestion(question, query, "difference_values")

    def _difference_occurrences(self, table: Table, domain: Domain) -> Optional[GeneratedQuestion]:
        category = self._category_column(table, domain, need_repeats=True)
        if category is None:
            return None
        values = self._category_values(table, category, 2)
        if not values:
            return None
        left, right = values
        category_phrase = self._column_phrase(domain, category)
        question = self._pick(
            f"How many more rows have {category_phrase} {left} than {right}?",
            f"In {category_phrase}, what is the difference between the number of {left} and {right} entries?",
        )
        query = q.count_difference(category, left, right)
        return GeneratedQuestion(question, query, "difference_occurrences")

    def _compare_entities(self, table: Table, domain: Domain) -> Optional[GeneratedQuestion]:
        entities = self._entities(table, domain, 2)
        target = self._numeric_column(table, domain)
        if not entities or target is None:
            return None
        left, right = entities
        highest = self._random.random() < 0.5
        phrase = self._column_phrase(domain, target)
        adjective = "higher" if highest else "lower"
        question = self._pick(
            f"Who has a {adjective} {phrase}, {left} or {right}?",
            f"Between {left} and {right}, which has the {adjective} {phrase}?",
        )
        kind = SuperlativeKind.ARGMAX if highest else SuperlativeKind.ARGMIN
        query = q.compare_values(target, domain.key_column, q.union(left, right), kind=kind)
        return GeneratedQuestion(question, query, "compare_entities")

    def _neighbor(self, table: Table, domain: Domain) -> Optional[GeneratedQuestion]:
        entities = self._entities(table, domain)
        if not entities:
            return None
        entity = entities[0]
        after = self._random.random() < 0.5
        key_phrase = self._column_phrase(domain, domain.key_column)
        direction = "after" if after else "before"
        question = self._pick(
            f"Which {key_phrase} is listed right {direction} {entity}?",
            f"What {key_phrase} comes immediately {direction} {entity}?",
        )
        base = q.column_records(domain.key_column, entity)
        records = q.next_records(base) if after else q.prev_records(base)
        query = q.column_values(domain.key_column, records)
        return GeneratedQuestion(question, query, "neighbor")

    def _most_common(self, table: Table, domain: Domain) -> Optional[GeneratedQuestion]:
        category = self._category_column(table, domain, need_repeats=True)
        if category is None:
            return None
        phrase = self._column_phrase(domain, category)
        question = self._pick(
            f"Which {phrase} appears the most?",
            f"Which {phrase} was recorded the most often?",
        )
        query = q.most_common(category)
        return GeneratedQuestion(question, query, "most_common")

    def _last_row(self, table: Table, domain: Domain) -> Optional[GeneratedQuestion]:
        last = self._random.random() < 0.5
        key_phrase = self._column_phrase(domain, domain.key_column)
        position = "last" if last else "first"
        question = self._pick(
            f"What is the {key_phrase} in the {position} row of the table?",
            f"Which {key_phrase} is listed {position}?",
        )
        query = (
            q.value_in_last_record(domain.key_column)
            if last
            else q.value_in_first_record(domain.key_column)
        )
        return GeneratedQuestion(question, query, "last_row")

    def _total_sum(self, table: Table, domain: Domain) -> Optional[GeneratedQuestion]:
        target = self._numeric_column(table, domain)
        if target is None:
            return None
        phrase = self._column_phrase(domain, target)
        category = self._category_column(table, domain)
        if category is not None and self._random.random() < 0.5:
            values = self._category_values(table, category, 1)
            if values:
                value = values[0]
                category_phrase = self._column_phrase(domain, category)
                question = self._pick(
                    f"What is the combined {phrase} of rows with {category_phrase} {value}?",
                    f"What is the total {phrase} for {value} entries?",
                )
                query = q.sum_(q.column_values(target, q.column_records(category, value)))
                return GeneratedQuestion(question, query, "total_sum")
        question = self._pick(
            f"What is the total {phrase} across all rows?",
            f"What is the combined {phrase} of the table?",
        )
        query = q.sum_(q.column_values(target, q.all_records()))
        return GeneratedQuestion(question, query, "total_sum")

    def _average(self, table: Table, domain: Domain) -> Optional[GeneratedQuestion]:
        target = self._numeric_column(table, domain)
        if target is None:
            return None
        phrase = self._column_phrase(domain, target)
        question = self._pick(
            f"What was the average {phrase}?",
            f"What is the mean {phrase} across the table?",
        )
        query = q.avg(q.column_values(target, q.all_records()))
        return GeneratedQuestion(question, query, "average")

    def _intersection(self, table: Table, domain: Domain) -> Optional[GeneratedQuestion]:
        category = self._category_column(table, domain)
        target = self._numeric_column(table, domain)
        if category is None or target is None:
            return None
        values = self._category_values(table, category, 1)
        threshold = self._numeric_threshold(table, target)
        if not values or threshold is None:
            return None
        value = values[0]
        key_phrase = self._column_phrase(domain, domain.key_column)
        category_phrase = self._column_phrase(domain, category)
        target_phrase = self._column_phrase(domain, target)
        question = self._pick(
            f"Which {key_phrase} had {category_phrase} {value} and more than {int(threshold)} {target_phrase}?",
            f"Which {key_phrase} with {category_phrase} {value} recorded over {int(threshold)} {target_phrase}?",
        )
        records = q.intersection(
            q.column_records(category, value),
            q.comparison_records(target, ">", threshold),
        )
        query = q.column_values(domain.key_column, records)
        return GeneratedQuestion(question, query, "intersection")

    def _union_count(self, table: Table, domain: Domain) -> Optional[GeneratedQuestion]:
        category = self._category_column(table, domain, need_repeats=True)
        if category is None:
            return None
        values = self._category_values(table, category, 2)
        if not values:
            return None
        left, right = values
        category_phrase = self._column_phrase(domain, category)
        question = self._pick(
            f"How many rows have {category_phrase} {left} or {right}?",
            f"How many entries list either {left} or {right} as the {category_phrase}?",
        )
        query = q.count(q.column_records(category, q.union(left, right)))
        return GeneratedQuestion(question, query, "union_count")

    def _conditional_superlative_entity(self, table: Table, domain: Domain) -> Optional[GeneratedQuestion]:
        category = self._category_column(table, domain, need_repeats=True)
        target = self._numeric_column(table, domain)
        if category is None or target is None:
            return None
        values = self._category_values(table, category, 1)
        if not values:
            return None
        value = values[0]
        highest = self._random.random() < 0.5
        key_phrase = self._column_phrase(domain, domain.key_column)
        category_phrase = self._column_phrase(domain, category)
        target_phrase = self._column_phrase(domain, target)
        adjective = "highest" if highest else "lowest"
        question = self._pick(
            f"Among rows with {category_phrase} {value}, which {key_phrase} had the {adjective} {target_phrase}?",
            f"Which {key_phrase} with {category_phrase} {value} had the {adjective} {target_phrase}?",
        )
        kind = SuperlativeKind.ARGMAX if highest else SuperlativeKind.ARGMIN
        from ..dcs import ast

        records = ast.SuperlativeRecords(kind, target, q.column_records(category, value))
        query = q.column_values(domain.key_column, records)
        return GeneratedQuestion(question, query, "conditional_superlative_entity")
