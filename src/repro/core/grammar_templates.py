"""The utterance-augmented grammar of Table 3.

The paper augments the parser's CFG by attaching an NL phrase to the
right-hand side of each rule, so that the utterance of a query can be read
off the derivation tree (Figure 3).  This module records those rules as
data: each :class:`GrammarRule` pairs the rule's syntactic shape with the
NL template and an example utterance, and maps to the AST node type that
the rule produces.

The rules are consumed by three clients:

* the Table 3 reference bench (printing the paper's grammar table),
* the utterance generator tests (each rule's template must be realised by
  :mod:`repro.core.utterance`),
* the semantic parser's candidate generator, which instantiates the same
  operator inventory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Type

from ..dcs import ast


@dataclass(frozen=True)
class GrammarRule:
    """One utterance-augmented grammar rule (a row of Table 3)."""

    name: str
    lhs: str
    rhs: str
    template: str
    example: str
    node_type: Type[ast.Query]


TABLE3_RULES: Tuple[GrammarRule, ...] = (
    GrammarRule(
        name="entity",
        lhs="Values",
        rhs="Entity",
        template="{entity}",
        example="Athens.",
        node_type=ast.ValueLiteral,
    ),
    GrammarRule(
        name="comparison",
        lhs="Values",
        rhs='"is at most" Entity',
        template="rows where values of column {column} are at most {value}",
        example="is at most 17.",
        node_type=ast.ComparisonRecords,
    ),
    GrammarRule(
        name="column-records",
        lhs="Records",
        rhs='"rows where value in column" Binary "is" Values',
        template="rows where value of column {column} is {value}",
        example="rows where value in column City is Athens or London.",
        node_type=ast.ColumnRecords,
    ),
    GrammarRule(
        name="column-values",
        lhs="Values",
        rhs='"values in column" Binary "in rows" Records',
        template="values in column {column} in {records}",
        example="values of column Year in rows where value of column City is Athens.",
        node_type=ast.ColumnValues,
    ),
    GrammarRule(
        name="prev-records",
        lhs="Records",
        rhs='"right above" Records',
        template="rows right above {records}",
        example="right above rows where value of column City is Athens.",
        node_type=ast.PrevRecords,
    ),
    GrammarRule(
        name="count",
        lhs="Entity",
        rhs='"the number of" Records',
        template="the number of {records}",
        example="the number of rows where value of column City is Athens.",
        node_type=ast.Aggregate,
    ),
    GrammarRule(
        name="max",
        lhs="Entity",
        rhs='"maximum of" Values',
        template="maximum of {values}",
        example=(
            "maximum of values in column Year in rows where value of column "
            "City is Athens."
        ),
        node_type=ast.Aggregate,
    ),
    GrammarRule(
        name="difference-of-values",
        lhs="Values",
        rhs='"difference in value of column" ValueFunc Values "and" Values',
        template=(
            "difference in values of column {column} between rows where value of "
            "column {where_column} is {left} and {right}"
        ),
        example=(
            "difference in values of column Year between rows where values of "
            "column City is London and Beijing."
        ),
        node_type=ast.Difference,
    ),
    GrammarRule(
        name="difference-of-occurrences",
        lhs="Values",
        rhs=(
            '"in column" Binary "what is the difference between rows with value" '
            'Entity "and rows with value" Entity'
        ),
        template=(
            "in column {column}, what is the difference between rows with value "
            "{left} and rows with value {right}"
        ),
        example=(
            "in column City, what is the difference between rows with value Athens "
            "and rows with value London."
        ),
        node_type=ast.Difference,
    ),
    GrammarRule(
        name="union",
        lhs="Values",
        rhs='Entity "or" Entity',
        template="{left} or {right}",
        example="China or Greece.",
        node_type=ast.Union,
    ),
    GrammarRule(
        name="intersection",
        lhs="Records",
        rhs='Records "and also" Records',
        template="{left} and also {right}",
        example=(
            "rows where value of column City is London and also where value of "
            "column Country is UK."
        ),
        node_type=ast.Intersection,
    ),
    GrammarRule(
        name="superlative-records",
        lhs="Records",
        rhs='Records "that have the highest value in column" Binary',
        template="{records} that have the highest value in column {column}",
        example="rows that have the highest value in column Year.",
        node_type=ast.SuperlativeRecords,
    ),
    GrammarRule(
        name="last-row",
        lhs="Records",
        rhs='"where it is the last row" Records',
        template="where it is the last row in {records}",
        example="where it is the last row in rows where value of column City is Athens.",
        node_type=ast.FirstLastRecords,
    ),
    GrammarRule(
        name="most-common",
        lhs="Values",
        rhs='"the value of" Values "that appears the most in column" Binary',
        template="the value of {values} that appears the most in column {column}",
        example="the value of Athens or London that appears the most in column City.",
        node_type=ast.MostCommonValue,
    ),
    GrammarRule(
        name="compare-values",
        lhs="Values",
        rhs='"between" Values "who has the highest value of column" Binary',
        template="between {values} who has the highest value of column {column}",
        example="between London or Beijing who has the highest value of column Year.",
        node_type=ast.CompareValues,
    ),
)


def rules_for_node(node_type: Type[ast.Query]) -> Tuple[GrammarRule, ...]:
    """Every Table 3 rule that produces the given AST node type."""
    return tuple(rule for rule in TABLE3_RULES if rule.node_type is node_type)


def format_table3() -> str:
    """Render the grammar as the two-column layout of the paper's Table 3."""
    lines = ["Rule | Example Utterance", "---- | -----------------"]
    for rule in TABLE3_RULES:
        lines.append(f"{rule.rhs} -> {rule.lhs} | {rule.example}")
    return "\n".join(lines)
