"""Scaling provenance highlights to large tables (paper Section 5.3).

NL utterances are independent of the table size, but showing highlights on a
table with thousands of rows is impractical.  The paper's solution: the
highlights explain the *query*, not the full answer, so it suffices to show
a small sample of rows that exercises every provenance stratum.

Concretely the sampler:

1. computes the provenance chain and maps each provenance cell to its row,
   producing the record sets ``RO ⊆ RE ⊆ RC``,
2. samples one row from ``RO``, one from ``RE \\ RO`` and one from
   ``RC \\ RE`` (two rows from ``RO`` for arithmetic-difference queries, one
   per subtracted value),
3. orders the sampled rows by their original position and restricts the
   highlight to them (Figure 7).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Tuple

from ..tables.table import Table
from ..dcs import ast
from ..dcs.ast import Query
from .highlights import HighlightedTable, Highlighter
from .provenance import MultilevelProvenance


@dataclass(frozen=True)
class HighlightSample:
    """The succinct row sample used to display highlights on a large table."""

    query: Query
    table: Table
    row_indices: Tuple[int, ...]
    highlighted: HighlightedTable
    output_rows: FrozenSet[int]
    execution_rows: FrozenSet[int]
    column_rows: FrozenSet[int]

    @property
    def sample_size(self) -> int:
        return len(self.row_indices)

    def sampled_table(self) -> Table:
        """A standalone table containing only the sampled rows."""
        return self.table.subtable(list(self.row_indices))


class HighlightSampler:
    """Samples representative rows for provenance-based highlights."""

    def __init__(self, table: Table, seed: Optional[int] = 0) -> None:
        self.table = table
        self.highlighter = Highlighter(table)
        self._random = random.Random(seed)

    def sample(self, query: Query, max_rows_per_stratum: int = 1) -> HighlightSample:
        """Produce the Figure 7 sample for ``query``.

        ``max_rows_per_stratum`` controls how many rows are drawn from each
        provenance stratum; the paper uses one (two from ``RO`` for
        difference queries, which is handled automatically).
        """
        highlighted = self.highlighter.highlight(query, output=True)
        provenance = highlighted.provenance
        output_rows = provenance.output_record_indices()
        execution_rows = provenance.execution_record_indices()
        column_rows = provenance.column_record_indices()

        chosen: List[int] = []
        chosen.extend(self._sample_output_rows(query, provenance, max_rows_per_stratum))
        chosen.extend(
            self._draw(execution_rows - output_rows - set(chosen), max_rows_per_stratum)
        )
        chosen.extend(
            self._draw(column_rows - execution_rows - set(chosen), max_rows_per_stratum)
        )
        # Keep the original table order (the paper orders sampled records by
        # their position in the source table).
        ordered = tuple(sorted(dict.fromkeys(chosen)))
        return HighlightSample(
            query=query,
            table=self.table,
            row_indices=ordered,
            highlighted=highlighted.restricted_to_rows(list(ordered)),
            output_rows=output_rows,
            execution_rows=execution_rows,
            column_rows=column_rows,
        )

    # -- internals --------------------------------------------------------------
    def _sample_output_rows(
        self, query: Query, provenance: MultilevelProvenance, per_stratum: int
    ) -> List[int]:
        """One row from ``RO`` — or one per subtracted operand for differences."""
        if isinstance(query, ast.Difference):
            rows: List[int] = []
            engine = self.highlighter.engine
            for operand in query.children():
                operand_rows = engine.output_provenance(operand).record_indices()
                rows.extend(self._draw(operand_rows - set(rows), per_stratum))
            return rows
        return self._draw(provenance.output_record_indices(), per_stratum)

    def _draw(self, candidates: FrozenSet[int], count: int) -> List[int]:
        pool = sorted(candidates)
        if not pool or count <= 0:
            return []
        if len(pool) <= count:
            return pool
        return sorted(self._random.sample(pool, count))


def sample_highlights(
    query: Query, table: Table, seed: Optional[int] = 0, max_rows_per_stratum: int = 1
) -> HighlightSample:
    """Convenience wrapper around :class:`HighlightSampler`."""
    return HighlightSampler(table, seed=seed).sample(query, max_rows_per_stratum)
