"""The paper's core contribution: provenance, utterances and highlights."""

from .provenance import (
    AggregateMarker,
    MultilevelProvenance,
    ProvenanceEngine,
    ProvenanceLevel,
    compute_provenance,
)
from .highlights import HighlightedTable, HighlightLevel, Highlighter, highlight
from .utterance import DerivationNode, UtteranceResult, derive, utterance
from .grammar_templates import TABLE3_RULES, GrammarRule, format_table3, rules_for_node
from .sampling import HighlightSample, HighlightSampler, sample_highlights
from .rendering import TEXT_LEGEND, render_html, render_table_text, render_text
from .explanation import (
    LARGE_TABLE_THRESHOLD,
    ExplanationGenerator,
    QueryExplanation,
    explain,
    explain_candidates,
)

__all__ = [
    "AggregateMarker",
    "ProvenanceLevel",
    "MultilevelProvenance",
    "ProvenanceEngine",
    "compute_provenance",
    "HighlightLevel",
    "HighlightedTable",
    "Highlighter",
    "highlight",
    "utterance",
    "derive",
    "UtteranceResult",
    "DerivationNode",
    "GrammarRule",
    "TABLE3_RULES",
    "rules_for_node",
    "format_table3",
    "HighlightSample",
    "HighlightSampler",
    "sample_highlights",
    "render_text",
    "render_html",
    "render_table_text",
    "TEXT_LEGEND",
    "QueryExplanation",
    "ExplanationGenerator",
    "explain",
    "explain_candidates",
    "LARGE_TABLE_THRESHOLD",
]
