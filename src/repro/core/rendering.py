"""Rendering of provenance-based highlights.

The paper's web interface displays highlights with colors (Figures 1, 4-9).
This module provides two renderers for the reproduction:

* :func:`render_text` — a plain-text / terminal rendering where colored
  cells are wrapped in ``**double asterisks**``, framed cells in
  ``[brackets]`` and lit cells in ``~tildes~`` (optionally with ANSI
  colors),
* :func:`render_html` — an HTML ``<table>`` with inline styles, close to
  what the user study participants saw.

Both renderers honour the aggregate header markers (``MAX(Year)``).
"""

from __future__ import annotations

from html import escape
from typing import Iterable, List, Optional, Sequence

from ..tables.table import Table
from .highlights import HighlightedTable, HighlightLevel

_ANSI = {
    HighlightLevel.COLORED: "\033[42;30m",  # green background
    HighlightLevel.FRAMED: "\033[44;37m",   # blue background
    HighlightLevel.LIT: "\033[43;30m",      # yellow background
}
_ANSI_RESET = "\033[0m"

_TEXT_MARKERS = {
    HighlightLevel.COLORED: ("**", "**"),
    HighlightLevel.FRAMED: ("[", "]"),
    HighlightLevel.LIT: ("~", "~"),
    HighlightLevel.NONE: ("", ""),
}

_HTML_STYLES = {
    HighlightLevel.COLORED: "background-color:#7ddf7d;font-weight:bold;",
    HighlightLevel.FRAMED: "border:2px solid #1f5fbf;background-color:#cfe0ff;",
    HighlightLevel.LIT: "background-color:#fff2b3;",
    HighlightLevel.NONE: "",
}

TEXT_LEGEND = "legend: **colored** = output (PO), [framed] = execution (PE), ~lit~ = column (PC)"


def render_table_text(table: Table, rows: Optional[Sequence[int]] = None) -> str:
    """Plain rendering of a table without highlights (used by examples)."""
    dummy = HighlightedTable(
        table=table, query=None, levels={}, header_markers={}, provenance=None
    )
    return render_text(dummy, rows=rows, legend=False)


def render_text(
    highlighted: HighlightedTable,
    rows: Optional[Sequence[int]] = None,
    ansi: bool = False,
    legend: bool = True,
) -> str:
    """Render a highlighted table as aligned monospace text.

    Parameters
    ----------
    highlighted:
        The highlight to render.
    rows:
        Row indices to display (defaults to every row of the table).
    ansi:
        Use ANSI background colors instead of textual markers.
    legend:
        Append a one-line legend explaining the markers.
    """
    table = highlighted.table
    row_indices = list(rows) if rows is not None else list(range(table.num_rows))
    headers = [highlighted.header_label(column) for column in table.columns]

    grid: List[List[str]] = [headers]
    for row_index in row_indices:
        record = table.record(row_index)
        rendered_row = []
        for cell in record.cells:
            level = highlighted.level(cell.row_index, cell.column)
            text = cell.display()
            if ansi and level in _ANSI:
                rendered_row.append(f"{_ANSI[level]}{text}{_ANSI_RESET}")
            else:
                prefix, suffix = _TEXT_MARKERS[level]
                rendered_row.append(f"{prefix}{text}{suffix}")
        grid.append(rendered_row)

    widths = [
        max(_visible_length(row[i]) for row in grid) for i in range(len(headers))
    ]
    lines = []
    for row_number, row in enumerate(grid):
        padded = [
            cell + " " * (widths[i] - _visible_length(cell)) for i, cell in enumerate(row)
        ]
        lines.append(" | ".join(padded).rstrip())
        if row_number == 0:
            lines.append("-+-".join("-" * width for width in widths))
    if legend:
        lines.append("")
        lines.append(TEXT_LEGEND)
    return "\n".join(lines)


def render_html(
    highlighted: HighlightedTable,
    rows: Optional[Sequence[int]] = None,
    caption: Optional[str] = None,
) -> str:
    """Render a highlighted table as an HTML ``<table>`` with inline styles."""
    table = highlighted.table
    row_indices = list(rows) if rows is not None else list(range(table.num_rows))
    parts = ['<table border="1" cellspacing="0" cellpadding="4">']
    if caption:
        parts.append(f"<caption>{escape(caption)}</caption>")
    parts.append("<thead><tr>")
    for column in table.columns:
        parts.append(f"<th>{escape(highlighted.header_label(column))}</th>")
    parts.append("</tr></thead><tbody>")
    for row_index in row_indices:
        parts.append("<tr>")
        for cell in table.record(row_index).cells:
            level = highlighted.level(cell.row_index, cell.column)
            style = _HTML_STYLES[level]
            style_attr = f' style="{style}"' if style else ""
            parts.append(f"<td{style_attr}>{escape(cell.display())}</td>")
        parts.append("</tr>")
    parts.append("</tbody></table>")
    return "".join(parts)


def _visible_length(text: str) -> int:
    """Length of a string ignoring ANSI escape sequences."""
    length = 0
    in_escape = False
    for char in text:
        if in_escape:
            if char == "m":
                in_escape = False
            continue
        if char == "\033":
            in_escape = True
            continue
        length += 1
    return length
