"""Provenance-based highlights (paper Section 5.2, Algorithm 1).

Given a query and its table, the highlighter divides the table cells into
four classes according to the multilevel provenance chain:

* **colored** cells — ``PO(Q, T)``: the cells returned as output or used to
  compute the final aggregate value,
* **framed** cells — ``PE(Q, T)``: cells (and aggregate functions) used
  during the execution,
* **lit** cells — ``PC(Q, T)``: every cell of a column projected or
  aggregated on by the query,
* all remaining cells carry no highlight.

Aggregate functions are surfaced by marking the relevant column header
(``MAX(Year)`` in Figure 1), mirroring ``MarkColumnHeader`` in Algorithm 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..tables.table import Cell, Table
from ..dcs.ast import Query
from .provenance import AggregateMarker, MultilevelProvenance, ProvenanceEngine


class HighlightLevel(Enum):
    """The visual class of one cell, ordered from strongest to weakest."""

    COLORED = "colored"
    FRAMED = "framed"
    LIT = "lit"
    NONE = "none"


@dataclass(frozen=True)
class HighlightedTable:
    """A table together with the per-cell highlight levels for one query.

    Attributes
    ----------
    table:
        The table the query was executed on.
    query:
        The explained query.
    levels:
        Mapping from cell coordinates ``(row_index, column)`` to the
        strongest applicable :class:`HighlightLevel` (colored beats framed
        beats lit).
    header_markers:
        ``column -> aggregate function names`` for the headers that carry an
        aggregate marker (``MAX(Year)``).
    provenance:
        The underlying multilevel provenance chain.
    """

    table: Table
    query: Query
    levels: Dict[Tuple[int, str], HighlightLevel]
    header_markers: Dict[str, Tuple[str, ...]]
    provenance: MultilevelProvenance

    # -- lookups ---------------------------------------------------------------
    def level(self, row_index: int, column: str) -> HighlightLevel:
        return self.levels.get((row_index, column), HighlightLevel.NONE)

    def cells_at_level(self, level: HighlightLevel) -> List[Cell]:
        return [
            self.table.cell(row, column)
            for (row, column), cell_level in sorted(self.levels.items())
            if cell_level == level
        ]

    @property
    def colored_cells(self) -> List[Cell]:
        return self.cells_at_level(HighlightLevel.COLORED)

    @property
    def framed_cells(self) -> List[Cell]:
        return self.cells_at_level(HighlightLevel.FRAMED)

    @property
    def lit_cells(self) -> List[Cell]:
        return self.cells_at_level(HighlightLevel.LIT)

    def header_label(self, column: str) -> str:
        """The rendered header: ``MAX(Year)`` when an aggregate marker applies."""
        markers = self.header_markers.get(column)
        if not markers:
            return column
        label = column
        for function in markers:
            label = f"{function.upper()}({label})"
        return label

    def highlighted_rows(self) -> List[int]:
        """Indices of rows containing at least one highlighted cell."""
        return sorted({row for (row, _column), level in self.levels.items()
                       if level != HighlightLevel.NONE})

    def restricted_to_rows(self, rows: List[int]) -> "HighlightedTable":
        """A new highlight containing only the given rows (used by sampling)."""
        keep = set(rows)
        levels = {
            key: level for key, level in self.levels.items() if key[0] in keep
        }
        return HighlightedTable(
            table=self.table,
            query=self.query,
            levels=levels,
            header_markers=dict(self.header_markers),
            provenance=self.provenance,
        )

    def summary(self) -> Dict[str, int]:
        """Cell counts per level — handy for tests and benches."""
        counts = {level.value: 0 for level in HighlightLevel if level != HighlightLevel.NONE}
        for level in self.levels.values():
            if level != HighlightLevel.NONE:
                counts[level.value] += 1
        return counts


class Highlighter:
    """Implements Algorithm 1 on top of the provenance engine."""

    def __init__(self, table: Table) -> None:
        self.table = table
        self.engine = ProvenanceEngine(table)

    def highlight(self, query: Query, output: bool = True) -> HighlightedTable:
        """Compute the highlight classes for ``query``.

        The ``output`` flag mirrors Algorithm 1's signature: the recursion
        described in the paper only materialises the visual marks at the
        top-level call.  The provenance recursion itself happens inside the
        provenance engine; this method corresponds to the ``output = True``
        invocation that lights, frames and colors the cells.
        """
        provenance = self.engine.provenance(query)
        levels: Dict[Tuple[int, str], HighlightLevel] = {}
        if output:
            # Algorithm 1 lines 16-18: LitCells(PC), FrameCells(PE), ColorCells(PO).
            for cell in provenance.columns.cells:
                levels[cell.coordinate] = HighlightLevel.LIT
            for cell in provenance.execution.cells:
                levels[cell.coordinate] = HighlightLevel.FRAMED
            for cell in provenance.output.cells:
                levels[cell.coordinate] = HighlightLevel.COLORED

        header_markers: Dict[str, Tuple[str, ...]] = {}
        for marker in sorted(provenance.execution.aggregates, key=lambda m: m.display()):
            if marker.column is None:
                continue
            existing = header_markers.get(marker.column, ())
            if marker.function not in existing:
                header_markers[marker.column] = existing + (marker.function,)

        return HighlightedTable(
            table=self.table,
            query=query,
            levels=levels,
            header_markers=header_markers,
            provenance=provenance,
        )


def highlight(query: Query, table: Table) -> HighlightedTable:
    """Convenience wrapper: ``Highlight(Q, T, output=True)`` of Algorithm 1."""
    return Highlighter(table).highlight(query, output=True)
