"""Multilevel cell-based provenance (paper Section 4).

Definition 4.1 introduces three cell-based provenance functions for a query
``Q`` over a table ``T``:

* ``PO(Q, T)`` — the *output* provenance: cells returned by ``Q(T)``, or, if
  the result is an aggregate/arithmetic value, the cells involved in that
  computation plus the aggregate function itself,
* ``PE(Q, T)`` — the *execution* provenance: the union of the output
  provenance of every sub-query of ``Q`` (Equation 2),
* ``PC(Q, T)`` — the *column* provenance: every cell in a column that is
  projected or aggregated on by ``Q`` (Equation 3).

Definition 4.2 combines them into the provenance chain
``Prov(Q, T) = (PO, PE, PC)`` with ``PO ⊆ PE ⊆ PC``.

The per-operator rules implemented here are the ones of the paper's Table 10
(reproduced in the module-level docstring of :mod:`repro.dcs.ast`).
Aggregate functions are represented by :class:`AggregateMarker` objects; to
keep the containment chain a literal invariant, markers introduced at the
output level are propagated to the execution and column levels as well.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Optional, Set, Tuple

from ..tables.table import Cell, Table
from ..dcs import ast
from ..dcs.ast import AggregateFunction, Query, ResultKind
from ..dcs.executor import ExecutionResult, Executor


@dataclass(frozen=True)
class AggregateMarker:
    """An aggregate (or arithmetic) function participating in the provenance.

    ``column`` is the table column whose header should carry the marker in
    the highlight rendering (``MAX(Year)`` in Figure 1); it is ``None`` when
    the function has no natural column (e.g. the outer ``sub`` of a
    difference query).
    """

    function: str
    column: Optional[str] = None

    def display(self) -> str:
        if self.column:
            return f"{self.function.upper()}({self.column})"
        return self.function.upper()


@dataclass(frozen=True)
class ProvenanceLevel:
    """One level of the provenance chain: a set of cells plus markers."""

    cells: FrozenSet[Cell]
    aggregates: FrozenSet[AggregateMarker]

    @staticmethod
    def empty() -> "ProvenanceLevel":
        return ProvenanceLevel(frozenset(), frozenset())

    def union(self, other: "ProvenanceLevel") -> "ProvenanceLevel":
        return ProvenanceLevel(self.cells | other.cells, self.aggregates | other.aggregates)

    def intersection_cells(self, other: "ProvenanceLevel") -> "ProvenanceLevel":
        return ProvenanceLevel(
            self.cells & other.cells, self.aggregates | other.aggregates
        )

    def with_cells(self, cells: Iterable[Cell]) -> "ProvenanceLevel":
        return ProvenanceLevel(self.cells | frozenset(cells), self.aggregates)

    def with_aggregates(self, markers: Iterable[AggregateMarker]) -> "ProvenanceLevel":
        return ProvenanceLevel(self.cells, self.aggregates | frozenset(markers))

    def issubset(self, other: "ProvenanceLevel") -> bool:
        return self.cells <= other.cells and self.aggregates <= other.aggregates

    def __len__(self) -> int:
        return len(self.cells) + len(self.aggregates)

    def record_indices(self) -> FrozenSet[int]:
        return frozenset(cell.row_index for cell in self.cells)


@dataclass(frozen=True)
class MultilevelProvenance:
    """The provenance chain ``Prov(Q, T) = (PO, PE, PC)`` of Definition 4.2."""

    query: Query
    output: ProvenanceLevel
    execution: ProvenanceLevel
    columns: ProvenanceLevel

    @property
    def chain(self) -> Tuple[ProvenanceLevel, ProvenanceLevel, ProvenanceLevel]:
        return (self.output, self.execution, self.columns)

    def chain_is_ordered(self) -> bool:
        """The paper's containment invariant ``PO ⊆ PE ⊆ PC``."""
        return self.output.issubset(self.execution) and self.execution.issubset(self.columns)

    def output_record_indices(self) -> FrozenSet[int]:
        """``RO(Q, T)``: rows containing output-provenance cells (Section 5.3)."""
        return self.output.record_indices()

    def execution_record_indices(self) -> FrozenSet[int]:
        """``RE(Q, T)``: rows containing execution-provenance cells."""
        return self.execution.record_indices()

    def column_record_indices(self) -> FrozenSet[int]:
        """``RC(Q, T)``: rows containing column-provenance cells."""
        return self.columns.record_indices()


class ProvenanceEngine:
    """Computes the multilevel provenance of lambda DCS queries over one table."""

    def __init__(self, table: Table) -> None:
        self.table = table
        self.executor = Executor(table)

    # -- public API ------------------------------------------------------------
    def provenance(self, query: Query) -> MultilevelProvenance:
        """Compute ``Prov(Q, T)`` for ``query``."""
        output = self.output_provenance(query)
        execution = self.execution_provenance(query)
        columns = self.column_provenance(query)
        # Markers introduced below the top level must not break the chain.
        execution = execution.union(ProvenanceLevel(frozenset(), output.aggregates))
        columns = columns.with_aggregates(execution.aggregates)
        return MultilevelProvenance(
            query=query, output=output, execution=execution, columns=columns
        )

    # -- PO --------------------------------------------------------------------
    def output_provenance(self, query: Query) -> ProvenanceLevel:
        """``PO(Q, T)`` following the per-operator rules of Table 10."""
        if isinstance(query, ast.Intersection):
            left = self.output_provenance(query.left)
            right = self.output_provenance(query.right)
            return left.intersection_cells(right)
        if isinstance(query, ast.Union):
            left = self.output_provenance(query.left)
            right = self.output_provenance(query.right)
            return left.union(right)
        if isinstance(query, ast.Aggregate):
            inner = self.output_provenance(query.operand)
            marker = AggregateMarker(query.function.value, _marker_column(query.operand))
            return inner.with_aggregates([marker])
        if isinstance(query, ast.Difference):
            left = self.output_provenance(query.left)
            right = self.output_provenance(query.right)
            return left.union(right)
        # Every remaining operator's PO is exactly the executor's output cells.
        result = self.executor.execute(query)
        return ProvenanceLevel(frozenset(result.cells), frozenset())

    # -- PE --------------------------------------------------------------------
    def execution_provenance(self, query: Query) -> ProvenanceLevel:
        """``PE(Q, T) = PO(Q, T) ∪ ⋃_{Q' ∈ QSUB} PO(Q', T)`` (Equation 2).

        The *Comparing Values* operator additionally examines the key-column
        cells of every candidate row (last row of Table 10), which are not
        output by any sub-query; they are added explicitly here.
        """
        level = self.output_provenance(query)
        for sub in query.subqueries():
            level = level.union(self.output_provenance(sub))
        for node in query.walk():
            if isinstance(node, ast.CompareValues):
                level = level.with_cells(self._compare_values_examined_cells(node))
        return level

    def _compare_values_examined_cells(self, query: "ast.CompareValues"):
        """Key-column cells of the rows holding a candidate value (Table 10)."""
        from ..tables.values import values_equal

        if not self.table.has_column(query.key_column) or not self.table.has_column(
            query.value_column
        ):
            return ()
        candidates = self.executor.execute(query.values).values
        key_cells = self.table.column_cells(query.key_column)
        examined = []
        for cell in self.table.column_cells(query.value_column):
            if any(values_equal(cell.value, candidate) for candidate in candidates):
                examined.append(key_cells[cell.row_index])
        return examined

    # -- PC --------------------------------------------------------------------
    def column_provenance(self, query: Query) -> ProvenanceLevel:
        """``PC(Q, T)``: every cell of every column mentioned by ``Q`` (Equation 3)."""
        cells: Set[Cell] = set()
        for column in query.columns():
            if self.table.has_column(column):
                cells.update(self.table.column_cells(column))
        return ProvenanceLevel(frozenset(cells), frozenset())


def compute_provenance(query: Query, table: Table) -> MultilevelProvenance:
    """Convenience wrapper: the provenance chain of ``query`` over ``table``."""
    return ProvenanceEngine(table).provenance(query)


def _marker_column(operand: Query) -> Optional[str]:
    """The column whose header should carry an aggregate marker.

    For ``max(R[Year]...)`` the marker belongs on ``Year``; for
    ``count(City.Athens)`` it belongs on ``City`` (Figure 16).  The first
    column mentioned by the operand is the projection/selection column in
    every operator of the grammar, so it is the right attachment point.
    """
    columns = operand.columns()
    return columns[0] if columns else None
