"""Query-to-utterance explanations (paper Section 5.1).

Every lambda DCS operator carries an NL template (the right-hand sides of
the grammar in Table 3).  An utterance for a query is derived recursively,
bottom-up, exactly like the query itself is derived by the parser's CFG
(Figure 3): the utterance of a composite operator embeds the utterances of
its sub-queries.

Besides the flat utterance string, :func:`derive` also returns the full
derivation tree so that callers can display Figure 3-style side-by-side
parse/utterance trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..dcs import ast
from ..dcs.ast import (
    AggregateFunction,
    ComparisonOperator,
    Query,
    ResultKind,
    SuperlativeKind,
)


@dataclass(frozen=True)
class DerivationNode:
    """One node of the utterance derivation tree (Figure 3b)."""

    category: str
    text: str
    query: Query
    children: Tuple["DerivationNode", ...] = ()

    def pretty(self, indent: int = 0) -> str:
        lines = [f"{'  ' * indent}({self.category}) {self.text}"]
        for child in self.children:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)


@dataclass(frozen=True)
class UtteranceResult:
    """The utterance of a query plus its derivation tree."""

    utterance: str
    derivation: DerivationNode


_CATEGORY = {
    ResultKind.RECORDS: "Records",
    ResultKind.VALUES: "Values",
    ResultKind.SCALAR: "Entity",
}

_COMPARISON_PHRASES = {
    ComparisonOperator.GT: "are more than",
    ComparisonOperator.GE: "are at least",
    ComparisonOperator.LT: "are less than",
    ComparisonOperator.LE: "are at most",
    ComparisonOperator.NE: "are not",
}

_AGGREGATE_PHRASES = {
    AggregateFunction.MAX: "maximum of",
    AggregateFunction.MIN: "minimum of",
    AggregateFunction.SUM: "the sum of",
    AggregateFunction.AVG: "the average of",
}


def utterance(query: Query) -> str:
    """The NL utterance describing ``query`` (the yield of the derivation tree)."""
    return derive(query).utterance


def derive(query: Query) -> UtteranceResult:
    """Derive the utterance and the derivation tree for ``query``."""
    node = _derive(query)
    return UtteranceResult(utterance=node.text, derivation=node)


# ---------------------------------------------------------------------------
# recursive derivation
# ---------------------------------------------------------------------------


def _derive(query: Query) -> DerivationNode:
    handler = _HANDLERS.get(type(query))
    if handler is None:
        raise ValueError(f"no utterance template for {type(query).__name__}")
    return handler(query)


def _node(query: Query, text: str, children: Tuple[DerivationNode, ...] = ()) -> DerivationNode:
    return DerivationNode(
        category=_CATEGORY[query.result_kind], text=text, query=query, children=children
    )


def _strip_rows_prefix(text: str) -> str:
    """Turn ``rows where ...`` into ``where ...`` for the intersection template."""
    if text.startswith("rows "):
        return text[len("rows "):]
    return text


def _u_value_literal(query: ast.ValueLiteral) -> DerivationNode:
    return DerivationNode(
        category="Entity", text=query.value.display(), query=query, children=()
    )


def _u_all_records(query: ast.AllRecords) -> DerivationNode:
    return _node(query, "rows")


def _u_column_records(query: ast.ColumnRecords) -> DerivationNode:
    value = _derive(query.value)
    text = f"rows where value of column {query.column} is {value.text}"
    return _node(query, text, (value,))


def _u_comparison_records(query: ast.ComparisonRecords) -> DerivationNode:
    value = _derive(query.value)
    phrase = _COMPARISON_PHRASES[query.op]
    text = f"rows where values of column {query.column} {phrase} {value.text}"
    return _node(query, text, (value,))


def _u_prev_records(query: ast.PrevRecords) -> DerivationNode:
    records = _derive(query.records)
    return _node(query, f"rows right above {records.text}", (records,))


def _u_next_records(query: ast.NextRecords) -> DerivationNode:
    records = _derive(query.records)
    return _node(query, f"rows right below {records.text}", (records,))


def _u_intersection(query: ast.Intersection) -> DerivationNode:
    left = _derive(query.left)
    right = _derive(query.right)
    text = f"{left.text} and also {_strip_rows_prefix(right.text)}"
    return _node(query, text, (left, right))


def _u_union(query: ast.Union) -> DerivationNode:
    left = _derive(query.left)
    right = _derive(query.right)
    return _node(query, f"{left.text} or {right.text}", (left, right))


def _u_superlative_records(query: ast.SuperlativeRecords) -> DerivationNode:
    records = _derive(query.records)
    extreme = "highest" if query.kind == SuperlativeKind.ARGMAX else "lowest"
    text = f"{records.text} that have the {extreme} value in column {query.column}"
    return _node(query, text, (records,))


def _u_first_last_records(query: ast.FirstLastRecords) -> DerivationNode:
    records = _derive(query.records)
    position = "last" if query.kind == SuperlativeKind.ARGMAX else "first"
    if isinstance(query.records, ast.AllRecords):
        text = f"where it is the {position} row"
    else:
        text = f"where it is the {position} row in {records.text}"
    return _node(query, text, (records,))


def _u_column_values(query: ast.ColumnValues) -> DerivationNode:
    records = _derive(query.records)
    if isinstance(query.records, ast.AllRecords):
        text = f"values in column {query.column}"
    else:
        text = f"values in column {query.column} in {records.text}"
    return _node(query, text, (records,))


def _u_index_superlative(query: ast.IndexSuperlative) -> DerivationNode:
    records = _derive(query.records)
    position = "last" if query.kind == SuperlativeKind.ARGMAX else "first"
    if isinstance(query.records, ast.AllRecords):
        text = f"values in column {query.column} in the {position} row"
    else:
        text = f"values in column {query.column} where it is the {position} row in {records.text}"
    return _node(query, text, (records,))


def _u_most_common(query: ast.MostCommonValue) -> DerivationNode:
    values = _derive(query.values)
    most_least = "most" if query.kind == SuperlativeKind.ARGMAX else "least"
    operand = query.values
    if isinstance(operand, ast.ColumnValues) and isinstance(operand.records, ast.AllRecords) \
            and operand.column == query.column:
        text = f"the value that appears the {most_least} in column {query.column}"
    else:
        text = (
            f"the value of {values.text} that appears the {most_least} "
            f"in column {query.column}"
        )
    return _node(query, text, (values,))


def _u_compare_values(query: ast.CompareValues) -> DerivationNode:
    values = _derive(query.values)
    extreme = "highest" if query.kind == SuperlativeKind.ARGMAX else "lowest"
    operand = query.values
    if isinstance(operand, ast.ColumnValues) and isinstance(operand.records, ast.AllRecords) \
            and operand.column == query.value_column:
        text = (
            f"between values in column {query.value_column} in rows, who has the "
            f"{extreme} value of column {query.key_column} out of the values in "
            f"{query.value_column}"
        )
    else:
        text = (
            f"between {values.text} who has the {extreme} value of column "
            f"{query.key_column} out of the values in {query.value_column}"
        )
    return _node(query, text, (values,))


def _u_aggregate(query: ast.Aggregate) -> DerivationNode:
    operand = _derive(query.operand)
    if query.function == AggregateFunction.COUNT:
        text = f"the number of {operand.text}"
    else:
        text = f"{_AGGREGATE_PHRASES[query.function]} {operand.text}"
    return _node(query, text, (operand,))


def _u_difference(query: ast.Difference) -> DerivationNode:
    left = _derive(query.left)
    right = _derive(query.right)
    special = _difference_special_case(query)
    if special is not None:
        text = special
    else:
        text = f"the difference between {left.text} and {right.text}"
    return _node(query, text, (left, right))


def _difference_special_case(query: ast.Difference) -> Optional[str]:
    """The two difference templates of Table 3."""
    left, right = query.left, query.right
    # Difference of values: sub(R[C1].C2.v, R[C1].C2.u)
    if (
        isinstance(left, ast.ColumnValues)
        and isinstance(right, ast.ColumnValues)
        and left.column == right.column
        and isinstance(left.records, ast.ColumnRecords)
        and isinstance(right.records, ast.ColumnRecords)
        and left.records.column == right.records.column
        and isinstance(left.records.value, ast.ValueLiteral)
        and isinstance(right.records.value, ast.ValueLiteral)
    ):
        return (
            f"difference in values of column {left.column} between rows where "
            f"value of column {left.records.column} is "
            f"{left.records.value.value.display()} and "
            f"{right.records.value.value.display()}"
        )
    # Difference of value occurrences: sub(count(C.v), count(C.u))
    if (
        isinstance(left, ast.Aggregate)
        and isinstance(right, ast.Aggregate)
        and left.function == AggregateFunction.COUNT
        and right.function == AggregateFunction.COUNT
        and isinstance(left.operand, ast.ColumnRecords)
        and isinstance(right.operand, ast.ColumnRecords)
        and left.operand.column == right.operand.column
        and isinstance(left.operand.value, ast.ValueLiteral)
        and isinstance(right.operand.value, ast.ValueLiteral)
    ):
        return (
            f"in column {left.operand.column}, what is the difference between "
            f"rows with value {left.operand.value.value.display()} and rows with "
            f"value {right.operand.value.value.display()}"
        )
    return None


_HANDLERS = {
    ast.ValueLiteral: _u_value_literal,
    ast.AllRecords: _u_all_records,
    ast.ColumnRecords: _u_column_records,
    ast.ComparisonRecords: _u_comparison_records,
    ast.PrevRecords: _u_prev_records,
    ast.NextRecords: _u_next_records,
    ast.Intersection: _u_intersection,
    ast.Union: _u_union,
    ast.SuperlativeRecords: _u_superlative_records,
    ast.FirstLastRecords: _u_first_last_records,
    ast.ColumnValues: _u_column_values,
    ast.IndexSuperlative: _u_index_superlative,
    ast.MostCommonValue: _u_most_common,
    ast.CompareValues: _u_compare_values,
    ast.Aggregate: _u_aggregate,
    ast.Difference: _u_difference,
}
