"""Combined query explanations (paper Section 5).

The interface explains each candidate query with *both* mechanisms:

* the NL utterance (Section 5.1) — a detailed description of the query,
* the provenance-based highlight (Section 5.2) — a quick visual cue,
  sampled down for large tables (Section 5.3).

:class:`QueryExplanation` bundles the two together with the query, its
answer and its serialised form; :func:`explain` builds one, and
:func:`explain_candidates` explains a ranked candidate list the way the
deployed interface does (Section 6.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..tables.table import Table
from ..dcs.ast import Query
from ..dcs.executor import ExecutionResult, Executor
from ..dcs.sexpr import to_sexpr
from .highlights import HighlightedTable, Highlighter
from .rendering import render_html, render_text
from .sampling import HighlightSample, HighlightSampler
from .utterance import DerivationNode, derive

#: Above this many rows, explanations display the sampled highlight only.
LARGE_TABLE_THRESHOLD = 50


@dataclass(frozen=True)
class QueryExplanation:
    """Everything the interface shows a user about one candidate query."""

    query: Query
    table: Table
    utterance: str
    derivation: DerivationNode
    highlighted: HighlightedTable
    sample: HighlightSample
    result: ExecutionResult
    sexpr: str

    @property
    def answer(self) -> Tuple[str, ...]:
        return self.result.answer_strings()

    @property
    def uses_sampling(self) -> bool:
        """Whether the display should fall back to the sampled rows (Section 5.3)."""
        return self.table.num_rows > LARGE_TABLE_THRESHOLD

    def display_rows(self) -> List[int]:
        """The row indices shown to the user."""
        if self.uses_sampling:
            return list(self.sample.row_indices)
        return list(range(self.table.num_rows))

    def as_text(self, ansi: bool = False) -> str:
        """Terminal-friendly rendering: utterance plus highlighted rows."""
        body = render_text(self.highlighted, rows=self.display_rows(), ansi=ansi)
        return f"utterance: {self.utterance}\n{body}"

    def as_html(self) -> str:
        """HTML rendering close to the user-study interface."""
        return render_html(
            self.highlighted, rows=self.display_rows(), caption=self.utterance
        )


class ExplanationGenerator:
    """Builds :class:`QueryExplanation` objects for one table."""

    def __init__(self, table: Table, sampling_seed: Optional[int] = 0) -> None:
        self.table = table
        self.executor = Executor(table)
        self.highlighter = Highlighter(table)
        self.sampler = HighlightSampler(table, seed=sampling_seed)

    def explain(self, query: Query) -> QueryExplanation:
        utterance_result = derive(query)
        highlighted = self.highlighter.highlight(query, output=True)
        sample = self.sampler.sample(query)
        result = self.executor.execute(query)
        return QueryExplanation(
            query=query,
            table=self.table,
            utterance=utterance_result.utterance,
            derivation=utterance_result.derivation,
            highlighted=highlighted,
            sample=sample,
            result=result,
            sexpr=to_sexpr(query),
        )

    def explain_many(self, queries: Sequence[Query]) -> List[QueryExplanation]:
        return [self.explain(query) for query in queries]


def explain(query: Query, table: Table) -> QueryExplanation:
    """Explain a single query over a table."""
    return ExplanationGenerator(table).explain(query)


def explain_candidates(queries: Sequence[Query], table: Table) -> List[QueryExplanation]:
    """Explain a ranked list of candidate queries over the same table."""
    return ExplanationGenerator(table).explain_many(queries)
