"""The lambda DCS abstract syntax tree.

Section 3.2 of the paper defines a simplified lambda DCS over single web
tables.  Every operator of the paper's Table 10 is represented by a node
class here:

=========================  ==================================================
Paper operator             AST node
=========================  ==================================================
``C.v`` (column records)   :class:`ColumnRecords`
``R[C].records``           :class:`ColumnValues`
``R[C].Prev.records``      :class:`ColumnValues` over :class:`PrevRecords`
``R[C].R[Prev].records``   :class:`ColumnValues` over :class:`NextRecords`
``aggr(vals)``             :class:`Aggregate`
``sub(vals, vals)``        :class:`Difference`
``sub(count(C.v), ...)``   :class:`Difference` over :class:`Aggregate`
``vals ⊔ vals``            :class:`Union`
``records ⊓ records``      :class:`Intersection`
``argmax(Record, C.x)``    :class:`SuperlativeRecords`
``R[C].argmax(recs, Idx)`` :class:`IndexSuperlative`
``argmax(vals, count)``    :class:`MostCommonValue`
``argmax(vals, R[C1].C2)`` :class:`CompareValues`
comparisons (>, >=, ...)   :class:`ComparisonRecords`
entity constant            :class:`ValueLiteral`
``Record`` (all rows)      :class:`AllRecords`
=========================  ==================================================

Every node reports its :class:`ResultKind` (records, values or scalar) and
its children, so that the executor, the SQL translator, the provenance
engine and the utterance generator can all walk the same tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator, Sequence, Tuple

from ..tables.values import Value
from .errors import QueryTypeError


class ResultKind(Enum):
    """What a (sub-)query evaluates to."""

    RECORDS = "records"
    VALUES = "values"
    SCALAR = "scalar"


class AggregateFunction(Enum):
    """The aggregate functions of the paper's ``aggrs`` set."""

    COUNT = "count"
    MIN = "min"
    MAX = "max"
    SUM = "sum"
    AVG = "avg"


class SuperlativeKind(Enum):
    ARGMAX = "argmax"
    ARGMIN = "argmin"


class ComparisonOperator(Enum):
    GT = ">"
    GE = ">="
    LT = "<"
    LE = "<="
    NE = "!="


@dataclass(frozen=True)
class Query:
    """Base class of all lambda DCS nodes."""

    def children(self) -> Tuple["Query", ...]:
        return ()

    @property
    def result_kind(self) -> ResultKind:
        raise NotImplementedError

    @property
    def operator_name(self) -> str:
        """Short operator name used by features, rendering and statistics."""
        return type(self).__name__

    def walk(self) -> Iterator["Query"]:
        """Depth-first pre-order traversal of the query tree (self included)."""
        yield self
        for child in self.children():
            yield from child.walk()

    def subqueries(self) -> Tuple["Query", ...]:
        """``QSUB``: every proper sub-query of this query."""
        return tuple(node for node in self.walk() if node is not self)

    def columns(self) -> Tuple[str, ...]:
        """Every column mentioned anywhere in the query, in traversal order."""
        seen = []
        for node in self.walk():
            for column in getattr(node, "_own_columns", lambda: ())():
                if column not in seen:
                    seen.append(column)
        return tuple(seen)

    def depth(self) -> int:
        children = self.children()
        if not children:
            return 1
        return 1 + max(child.depth() for child in children)

    def size(self) -> int:
        return sum(1 for _ in self.walk())

    def _own_columns(self) -> Tuple[str, ...]:
        return ()


# ---------------------------------------------------------------------------
# Leaves
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ValueLiteral(Query):
    """An entity constant (a unary containing a single value), e.g. ``Greece``."""

    value: Value

    @property
    def result_kind(self) -> ResultKind:
        return ResultKind.VALUES

    def __repr__(self) -> str:
        return f"ValueLiteral({self.value.display()!r})"


@dataclass(frozen=True)
class AllRecords(Query):
    """The ``Record`` unary: every record of the table."""

    @property
    def result_kind(self) -> ResultKind:
        return ResultKind.RECORDS


# ---------------------------------------------------------------------------
# Record-producing operators
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnRecords(Query):
    """``C.v`` — records whose column ``C`` equals value ``v``.

    The value operand is a VALUES query; in the common case it is a
    :class:`ValueLiteral`, but a union of literals (``C.(v ⊔ u)``) is also
    allowed and selects records matching any of the values.
    """

    column: str
    value: Query

    def __post_init__(self):
        _require(self.value, ResultKind.VALUES, "ColumnRecords.value")

    def children(self) -> Tuple[Query, ...]:
        return (self.value,)

    @property
    def result_kind(self) -> ResultKind:
        return ResultKind.RECORDS

    def _own_columns(self) -> Tuple[str, ...]:
        return (self.column,)


@dataclass(frozen=True)
class ComparisonRecords(Query):
    """Records whose column value compares against a constant.

    E.g. *rows where values of column Games are more than 4* is
    ``ComparisonRecords("Games", GT, ValueLiteral(4))`` (Figure 4).
    """

    column: str
    op: ComparisonOperator
    value: Query

    def __post_init__(self):
        _require(self.value, ResultKind.VALUES, "ComparisonRecords.value")

    def children(self) -> Tuple[Query, ...]:
        return (self.value,)

    @property
    def result_kind(self) -> ResultKind:
        return ResultKind.RECORDS

    def _own_columns(self) -> Tuple[str, ...]:
        return (self.column,)


@dataclass(frozen=True)
class PrevRecords(Query):
    """``Prev.records`` — the records immediately above the given records."""

    records: Query

    def __post_init__(self):
        _require(self.records, ResultKind.RECORDS, "PrevRecords.records")

    def children(self) -> Tuple[Query, ...]:
        return (self.records,)

    @property
    def result_kind(self) -> ResultKind:
        return ResultKind.RECORDS


@dataclass(frozen=True)
class NextRecords(Query):
    """``R[Prev].records`` — the records immediately below the given records."""

    records: Query

    def __post_init__(self):
        _require(self.records, ResultKind.RECORDS, "NextRecords.records")

    def children(self) -> Tuple[Query, ...]:
        return (self.records,)

    @property
    def result_kind(self) -> ResultKind:
        return ResultKind.RECORDS


@dataclass(frozen=True)
class Intersection(Query):
    """``records1 ⊓ records2`` — records appearing in both operands."""

    left: Query
    right: Query

    def __post_init__(self):
        _require(self.left, ResultKind.RECORDS, "Intersection.left")
        _require(self.right, ResultKind.RECORDS, "Intersection.right")

    def children(self) -> Tuple[Query, ...]:
        return (self.left, self.right)

    @property
    def result_kind(self) -> ResultKind:
        return ResultKind.RECORDS


@dataclass(frozen=True)
class JoinRecords(Query):
    """Cross-table bridge — records of the *primary* table whose
    ``left_column`` value matches (``values_equal``) some value of
    ``right_column`` in the given records of the *secondary* table.

    The one node that spans two tables: ``records`` is evaluated against
    the secondary table, everything above this node against the primary.
    Relationally it is a semi-join — ``T1 ⋉ T2`` on
    ``T1.left_column = T2.right_column`` — which keeps the result a
    plain RECORDS set of the primary table, so every single-table
    operator composes above it unchanged.  The single-table
    :class:`~repro.dcs.executor.Executor` rejects it with a clear
    error; execution needs the two-table
    :class:`~repro.compose.ComposedExecutor`.
    """

    left_column: str
    right_column: str
    records: Query

    def __post_init__(self):
        _require(self.records, ResultKind.RECORDS, "JoinRecords.records")

    def children(self) -> Tuple[Query, ...]:
        return (self.records,)

    @property
    def result_kind(self) -> ResultKind:
        return ResultKind.RECORDS

    def _own_columns(self) -> Tuple[str, ...]:
        # Only the primary-side column: ``columns()`` and the
        # single-table validator see the table the whole query answers
        # from.  The right side is checked by ``validate_composed``.
        return (self.left_column,)


@dataclass(frozen=True)
class SuperlativeRecords(Query):
    """``argmax(records, λx[C.x])`` — records with the extreme value in ``C``.

    E.g. *rows that have the highest value in column Year*.
    """

    kind: SuperlativeKind
    column: str
    records: Query

    def __post_init__(self):
        _require(self.records, ResultKind.RECORDS, "SuperlativeRecords.records")

    def children(self) -> Tuple[Query, ...]:
        return (self.records,)

    @property
    def result_kind(self) -> ResultKind:
        return ResultKind.RECORDS

    def _own_columns(self) -> Tuple[str, ...]:
        return (self.column,)


@dataclass(frozen=True)
class FirstLastRecords(Query):
    """``argmax/argmin(records, Index)`` — the last / first record of a set.

    Used by the paper's *"where it is the last row"* template.  ``ARGMAX``
    selects the record with the highest index (the last row of the set),
    ``ARGMIN`` the first.
    """

    kind: SuperlativeKind
    records: Query

    def __post_init__(self):
        _require(self.records, ResultKind.RECORDS, "FirstLastRecords.records")

    def children(self) -> Tuple[Query, ...]:
        return (self.records,)

    @property
    def result_kind(self) -> ResultKind:
        return ResultKind.RECORDS


# ---------------------------------------------------------------------------
# Value-producing operators
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnValues(Query):
    """``R[C].records`` — values of column ``C`` in the given records."""

    column: str
    records: Query

    def __post_init__(self):
        _require(self.records, ResultKind.RECORDS, "ColumnValues.records")

    def children(self) -> Tuple[Query, ...]:
        return (self.records,)

    @property
    def result_kind(self) -> ResultKind:
        return ResultKind.VALUES

    def _own_columns(self) -> Tuple[str, ...]:
        return (self.column,)


@dataclass(frozen=True)
class Union(Query):
    """``vals1 ⊔ vals2`` (or a union of record sets)."""

    left: Query
    right: Query

    def __post_init__(self):
        if self.left.result_kind != self.right.result_kind:
            raise QueryTypeError(
                "Union operands must have the same kind, got "
                f"{self.left.result_kind.value} and {self.right.result_kind.value}"
            )
        if self.left.result_kind == ResultKind.SCALAR:
            raise QueryTypeError("Union of scalars is not defined")

    def children(self) -> Tuple[Query, ...]:
        return (self.left, self.right)

    @property
    def result_kind(self) -> ResultKind:
        return self.left.result_kind


@dataclass(frozen=True)
class IndexSuperlative(Query):
    """``R[C].argmax(records, Index)`` — the value of ``C`` in the last
    (or first, for ``ARGMIN``) record of a record set.

    E.g. *"The title of the last show"* → value of column Episode in the
    record with the highest index.
    """

    kind: SuperlativeKind
    column: str
    records: Query

    def __post_init__(self):
        _require(self.records, ResultKind.RECORDS, "IndexSuperlative.records")

    def children(self) -> Tuple[Query, ...]:
        return (self.records,)

    @property
    def result_kind(self) -> ResultKind:
        return ResultKind.VALUES

    def _own_columns(self) -> Tuple[str, ...]:
        return (self.column,)


@dataclass(frozen=True)
class MostCommonValue(Query):
    """``argmax(vals, R[λx.count(C.x)])`` — the value appearing most often in ``C``.

    The operand restricts the candidate values; passing every value of the
    column yields the paper's *"the value that appears the most in column C"*.
    """

    column: str
    values: Query
    kind: SuperlativeKind = SuperlativeKind.ARGMAX

    def __post_init__(self):
        _require(self.values, ResultKind.VALUES, "MostCommonValue.values")

    def children(self) -> Tuple[Query, ...]:
        return (self.values,)

    @property
    def result_kind(self) -> ResultKind:
        return ResultKind.VALUES

    def _own_columns(self) -> Tuple[str, ...]:
        return (self.column,)


@dataclass(frozen=True)
class CompareValues(Query):
    """``argmax(vals, R[λx.R[C1].C2.x])`` — compare candidate values by a key column.

    E.g. *"between London or Beijing who has the highest value of column
    Year"*: the candidate values live in column ``C2`` (City) and are
    compared by the value of ``C1`` (Year) in their records.
    """

    kind: SuperlativeKind
    key_column: str
    value_column: str
    values: Query

    def __post_init__(self):
        _require(self.values, ResultKind.VALUES, "CompareValues.values")

    def children(self) -> Tuple[Query, ...]:
        return (self.values,)

    @property
    def result_kind(self) -> ResultKind:
        return ResultKind.VALUES

    def _own_columns(self) -> Tuple[str, ...]:
        return (self.key_column, self.value_column)


# ---------------------------------------------------------------------------
# Scalar-producing operators
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Aggregate(Query):
    """``aggr(operand)`` for ``aggr ∈ {count, min, max, sum, avg}``.

    ``count`` also accepts a RECORDS operand (*"the number of rows where
    ..."*); the numeric aggregates require a VALUES operand.
    """

    function: AggregateFunction
    operand: Query

    def __post_init__(self):
        kind = self.operand.result_kind
        if kind == ResultKind.SCALAR:
            raise QueryTypeError("cannot aggregate a scalar")
        if kind == ResultKind.RECORDS and self.function != AggregateFunction.COUNT:
            raise QueryTypeError(
                f"{self.function.value} requires a VALUES operand, got RECORDS"
            )

    def children(self) -> Tuple[Query, ...]:
        return (self.operand,)

    @property
    def result_kind(self) -> ResultKind:
        return ResultKind.SCALAR


@dataclass(frozen=True)
class Difference(Query):
    """``sub(left, right)`` — arithmetic difference of two single-valued operands.

    Each operand is either a VALUES query that evaluates to one value (the
    paper's *Difference of Values*) or a scalar aggregate (the paper's
    *Difference of Value Occurrences*, ``sub(count(C.v), count(C.u))``).
    """

    left: Query
    right: Query

    def __post_init__(self):
        for name, operand in (("left", self.left), ("right", self.right)):
            if operand.result_kind == ResultKind.RECORDS:
                raise QueryTypeError(
                    f"Difference.{name} must produce values or a scalar, got RECORDS"
                )

    def children(self) -> Tuple[Query, ...]:
        return (self.left, self.right)

    @property
    def result_kind(self) -> ResultKind:
        return ResultKind.SCALAR


def _require(query: Query, kind: ResultKind, where: str) -> None:
    if query.result_kind != kind:
        raise QueryTypeError(
            f"{where} must be a {kind.value} query, got {query.result_kind.value} "
            f"({type(query).__name__})"
        )


#: Nodes producing record sets.
RECORD_NODES = (
    AllRecords,
    ColumnRecords,
    ComparisonRecords,
    PrevRecords,
    NextRecords,
    Intersection,
    JoinRecords,
    SuperlativeRecords,
    FirstLastRecords,
)

#: Nodes producing value sets.
VALUE_NODES = (
    ValueLiteral,
    ColumnValues,
    Union,
    IndexSuperlative,
    MostCommonValue,
    CompareValues,
)

#: Nodes producing scalars.
SCALAR_NODES = (Aggregate, Difference)

ALL_NODE_TYPES = RECORD_NODES + VALUE_NODES + SCALAR_NODES
