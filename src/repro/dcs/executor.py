"""Execution of lambda DCS queries over a :class:`~repro.tables.table.Table`.

The executor walks the query AST and produces an :class:`ExecutionResult`
that carries, besides the answer itself, the *output cells* of every
operator.  Those per-operator output cells are exactly the ``PO`` sets of
the paper's Table 10, which is why the provenance engine
(:mod:`repro.core.provenance`) is built directly on top of this module.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union as TUnion

from ..tables.index import table_index
from ..tables.table import Cell, Table
from ..tables.values import DateValue, NumberValue, StringValue, Value, values_equal
from . import ast
from .ast import AggregateFunction, ComparisonOperator, Query, ResultKind, SuperlativeKind
from .errors import ExecutionError


@dataclass(frozen=True)
class ExecutionResult:
    """The result of executing one (sub-)query.

    Attributes
    ----------
    kind:
        Whether the query produced records, values or a scalar.
    record_indices:
        For RECORDS results, the indices of the selected records.
    cells:
        The operator's output cells — the ``PO`` set of Table 10 (without
        the aggregate-function markers, which are listed separately).
    values:
        The answer values.  For RECORDS results this is empty; for VALUES
        results it is the multiset of output cell values (plus literal
        values with no backing cell); for SCALAR results it is a single
        value.
    aggregates:
        Names of aggregate/arithmetic functions applied at this node
        (``{AGGR}`` in the provenance model).
    """

    kind: ResultKind
    record_indices: FrozenSet[int] = frozenset()
    cells: Tuple[Cell, ...] = ()
    values: Tuple[Value, ...] = ()
    aggregates: Tuple[str, ...] = ()

    # -- answer interface -----------------------------------------------------
    def answer_values(self) -> Tuple[Value, ...]:
        """The values this result denotes as an *answer* to a question."""
        return self.values

    def answer_set(self) -> FrozenSet[Value]:
        return frozenset(self.values)

    def answer_strings(self) -> Tuple[str, ...]:
        return tuple(value.display() for value in self.values)

    @property
    def is_empty(self) -> bool:
        if self.kind == ResultKind.RECORDS:
            return not self.record_indices
        return not self.values

    def scalar(self) -> Value:
        if self.kind != ResultKind.SCALAR or not self.values:
            raise ExecutionError("result is not a scalar")
        return self.values[0]


def _match_key(value: Value):
    """A hashable key whose equality *implies* ``values_equal``.

    Used by the :func:`answers_match` fast path: two values with equal
    keys are always ``values_equal`` (normalised text for strings, the
    component triple for dates, a 1e-9-rounded float for numbers — well
    inside the ``isclose`` tolerance).  The converse does not hold
    (cross-type equality, tolerance edges), which is why unequal key
    multisets still fall back to the pairwise comparison.
    """
    if isinstance(value, StringValue):
        return ("str", value.normalized)
    if isinstance(value, NumberValue):
        return ("num", round(value.number, 9))
    if isinstance(value, DateValue):
        return ("date", value.year, value.month, value.day)
    return ("other", value)


def answers_match(left: Sequence[Value], right: Sequence[Value]) -> bool:
    """Order-insensitive answer comparison with cross-type value equality."""
    remaining = list(right)
    if len(left) != len(remaining):
        # Fall back to set semantics: duplicated values in one answer are
        # tolerated as long as the distinct values coincide.
        left_set, right_set = list(dict.fromkeys(left)), list(dict.fromkeys(right))
        if len(left_set) != len(right_set):
            return False
        left, remaining = left_set, right_set
    # Fast path: identical key multisets admit a perfect same-type
    # matching, so the quadratic pairwise search below is redundant.
    if Counter(map(_match_key, left)) == Counter(map(_match_key, remaining)):
        return True
    for value in left:
        for i, other in enumerate(remaining):
            if values_equal(value, other):
                del remaining[i]
                break
        else:
            return False
    return True


class Executor:
    """Executes lambda DCS queries against one table.

    With ``use_index=True`` (the default) the hot operators — column
    selections, ordered comparisons, superlatives and the value
    aggregations built on them — answer from the content-addressed
    :class:`~repro.tables.index.TableIndex` via hash and bisect lookups
    instead of scanning every row.  ``use_index=False`` keeps the plain
    row-scan reference path; the two are bit-identical (property-tested
    in ``tests/test_property_based.py``).
    """

    def __init__(self, table: Table, use_index: bool = True) -> None:
        self.table = table
        self._index = table_index(table) if use_index else None

    # -- index helpers ---------------------------------------------------------
    def _equal_rows(self, column: str, targets: Sequence[Value]) -> List[int]:
        """Sorted rows of ``column`` whose cell equals any of ``targets``.

        Probes the column index for candidate rows (a guaranteed
        superset) and confirms each with ``values_equal``, so the result
        is exactly the set a full scan would select.
        """
        cells = self.table.column_cells(column)
        index = self._index.column(column)
        rows = set()
        for target in targets:
            for row in index.equality_candidates(target):
                if row not in rows and values_equal(cells[row].value, target):
                    rows.add(row)
        return sorted(rows)

    # -- public entry point ----------------------------------------------------
    def execute(self, query: Query) -> ExecutionResult:
        method = getattr(self, f"_execute_{type(query).__name__}", None)
        if method is None:
            raise ExecutionError(f"no execution rule for {type(query).__name__}")
        return method(query)

    # -- leaves ----------------------------------------------------------------
    def _execute_ValueLiteral(self, query: ast.ValueLiteral) -> ExecutionResult:
        return ExecutionResult(kind=ResultKind.VALUES, values=(query.value,))

    def _execute_AllRecords(self, query: ast.AllRecords) -> ExecutionResult:
        indices = frozenset(range(self.table.num_rows))
        return ExecutionResult(kind=ResultKind.RECORDS, record_indices=indices)

    # -- record operators --------------------------------------------------------
    def _execute_ColumnRecords(self, query: ast.ColumnRecords) -> ExecutionResult:
        targets = self.execute(query.value).values
        self._check_column(query.column)
        column_cells = self.table.column_cells(query.column)
        if self._index is not None:
            cells = [column_cells[row] for row in self._equal_rows(query.column, targets)]
        else:
            cells = [
                cell
                for cell in column_cells
                if any(values_equal(cell.value, target) for target in targets)
            ]
        return ExecutionResult(
            kind=ResultKind.RECORDS,
            record_indices=frozenset(cell.row_index for cell in cells),
            cells=tuple(cells),
        )

    def _execute_ComparisonRecords(self, query: ast.ComparisonRecords) -> ExecutionResult:
        operand = self.execute(query.value)
        if len(operand.values) != 1:
            raise ExecutionError("comparison requires exactly one reference value")
        reference = operand.values[0]
        self._check_column(query.column)
        column_cells = self.table.column_cells(query.column)
        if self._index is not None:
            if query.op == ComparisonOperator.NE:
                equal = set(self._equal_rows(query.column, (reference,)))
                rows: List[int] = [
                    row for row in range(self.table.num_rows) if row not in equal
                ]
            else:
                rows = self._index.column(query.column).ordered_rows(
                    query.op.value, reference
                )
            cells = [column_cells[row] for row in rows]
        else:
            cells = [
                cell
                for cell in column_cells
                if _compare(cell.value, query.op, reference)
            ]
        return ExecutionResult(
            kind=ResultKind.RECORDS,
            record_indices=frozenset(cell.row_index for cell in cells),
            cells=tuple(cells),
        )

    def _execute_PrevRecords(self, query: ast.PrevRecords) -> ExecutionResult:
        base = self.execute(query.records)
        indices = frozenset(i - 1 for i in base.record_indices if i - 1 >= 0)
        return ExecutionResult(kind=ResultKind.RECORDS, record_indices=indices)

    def _execute_NextRecords(self, query: ast.NextRecords) -> ExecutionResult:
        base = self.execute(query.records)
        limit = self.table.num_rows
        indices = frozenset(i + 1 for i in base.record_indices if i + 1 < limit)
        return ExecutionResult(kind=ResultKind.RECORDS, record_indices=indices)

    def _execute_Intersection(self, query: ast.Intersection) -> ExecutionResult:
        left = self.execute(query.left)
        right = self.execute(query.right)
        indices = left.record_indices & right.record_indices
        cells = tuple(
            cell
            for cell in left.cells + right.cells
            if cell.row_index in indices
        )
        return ExecutionResult(
            kind=ResultKind.RECORDS, record_indices=frozenset(indices), cells=cells
        )

    def _execute_JoinRecords(self, query: ast.JoinRecords) -> ExecutionResult:
        raise ExecutionError(
            "join-records spans two tables; execute it with "
            "repro.compose.ComposedExecutor(primary, secondary)"
        )

    def _execute_SuperlativeRecords(self, query: ast.SuperlativeRecords) -> ExecutionResult:
        base = self.execute(query.records)
        self._check_column(query.column)
        column_cells = self.table.column_cells(query.column)
        candidates = [column_cells[i] for i in sorted(base.record_indices)]
        if not candidates:
            return ExecutionResult(kind=ResultKind.RECORDS)
        extreme = _extreme_value(
            [cell.value for cell in candidates], query.kind
        )
        if self._index is not None:
            winners = [
                column_cells[row]
                for row in self._equal_rows(query.column, (extreme,))
                if row in base.record_indices
            ]
        else:
            winners = [cell for cell in candidates if values_equal(cell.value, extreme)]
        indices = frozenset(cell.row_index for cell in winners)
        return ExecutionResult(
            kind=ResultKind.RECORDS, record_indices=indices, cells=tuple(winners)
        )

    def _execute_FirstLastRecords(self, query: ast.FirstLastRecords) -> ExecutionResult:
        base = self.execute(query.records)
        if not base.record_indices:
            return ExecutionResult(kind=ResultKind.RECORDS)
        picker = max if query.kind == SuperlativeKind.ARGMAX else min
        chosen = picker(base.record_indices)
        return ExecutionResult(
            kind=ResultKind.RECORDS, record_indices=frozenset({chosen})
        )

    # -- value operators -----------------------------------------------------------
    def _execute_ColumnValues(self, query: ast.ColumnValues) -> ExecutionResult:
        base = self.execute(query.records)
        self._check_column(query.column)
        column_cells = self.table.column_cells(query.column)
        cells = tuple(column_cells[i] for i in sorted(base.record_indices))
        return ExecutionResult(
            kind=ResultKind.VALUES,
            cells=cells,
            values=tuple(cell.value for cell in cells),
        )

    def _execute_Union(self, query: ast.Union) -> ExecutionResult:
        left = self.execute(query.left)
        right = self.execute(query.right)
        if query.result_kind == ResultKind.RECORDS:
            indices = left.record_indices | right.record_indices
            return ExecutionResult(
                kind=ResultKind.RECORDS,
                record_indices=frozenset(indices),
                cells=left.cells + right.cells,
            )
        values = list(left.values)
        for value in right.values:
            if not any(values_equal(value, existing) for existing in values):
                values.append(value)
        return ExecutionResult(
            kind=ResultKind.VALUES,
            cells=left.cells + right.cells,
            values=tuple(values),
        )

    def _execute_IndexSuperlative(self, query: ast.IndexSuperlative) -> ExecutionResult:
        base = self.execute(query.records)
        self._check_column(query.column)
        if not base.record_indices:
            return ExecutionResult(kind=ResultKind.VALUES)
        picker = max if query.kind == SuperlativeKind.ARGMAX else min
        chosen = picker(base.record_indices)
        cell = self.table.cell(chosen, query.column)
        return ExecutionResult(
            kind=ResultKind.VALUES, cells=(cell,), values=(cell.value,)
        )

    def _execute_MostCommonValue(self, query: ast.MostCommonValue) -> ExecutionResult:
        raw_candidates = self.execute(query.values).values
        candidates: List[Value] = []
        for candidate in raw_candidates:
            if not any(values_equal(candidate, existing) for existing in candidates):
                candidates.append(candidate)
        self._check_column(query.column)
        column_cells = self.table.column_cells(query.column)
        counts: List[Tuple[Value, int, List[Cell]]] = []
        for candidate in candidates:
            if self._index is not None:
                matching = [
                    column_cells[row]
                    for row in self._equal_rows(query.column, (candidate,))
                ]
            else:
                matching = [
                    cell for cell in column_cells if values_equal(cell.value, candidate)
                ]
            counts.append((candidate, len(matching), matching))
        counts = [entry for entry in counts if entry[1] > 0]
        if not counts:
            return ExecutionResult(kind=ResultKind.VALUES)
        best_count = (
            max(entry[1] for entry in counts)
            if query.kind == SuperlativeKind.ARGMAX
            else min(entry[1] for entry in counts)
        )
        winners = [entry for entry in counts if entry[1] == best_count]
        values = tuple(entry[0] for entry in winners)
        cells = tuple(cell for entry in winners for cell in entry[2])
        return ExecutionResult(kind=ResultKind.VALUES, cells=cells, values=values)

    def _execute_CompareValues(self, query: ast.CompareValues) -> ExecutionResult:
        candidates = self.execute(query.values).values
        self._check_column(query.key_column)
        self._check_column(query.value_column)
        value_cells = self.table.column_cells(query.value_column)
        key_cells = self.table.column_cells(query.key_column)
        if self._index is not None:
            scored: List[Tuple[Cell, Value]] = [
                (value_cells[row], key_cells[row].value)
                for row in self._equal_rows(query.value_column, candidates)
            ]
        else:
            scored = []
            for cell in value_cells:
                if any(values_equal(cell.value, candidate) for candidate in candidates):
                    scored.append((cell, key_cells[cell.row_index].value))
        if not scored:
            return ExecutionResult(kind=ResultKind.VALUES)
        extreme = _extreme_value([key for _, key in scored], query.kind)
        winners = [cell for cell, key in scored if values_equal(key, extreme)]
        # Deduplicate equal display values while keeping every witness cell.
        values: List[Value] = []
        for cell in winners:
            if not any(values_equal(cell.value, existing) for existing in values):
                values.append(cell.value)
        return ExecutionResult(
            kind=ResultKind.VALUES, cells=tuple(winners), values=tuple(values)
        )

    # -- scalar operators ------------------------------------------------------------
    def _execute_Aggregate(self, query: ast.Aggregate) -> ExecutionResult:
        operand = self.execute(query.operand)
        function = query.function
        if function == AggregateFunction.COUNT:
            if operand.kind == ResultKind.RECORDS:
                count = len(operand.record_indices)
                cells = operand.cells
            else:
                count = len(operand.values)
                cells = operand.cells
            return ExecutionResult(
                kind=ResultKind.SCALAR,
                cells=cells,
                values=(NumberValue(float(count)),),
                aggregates=(function.value,),
            )
        values = operand.values
        if not values:
            raise ExecutionError(f"{function.value} over an empty value set")
        if function in (AggregateFunction.MIN, AggregateFunction.MAX):
            kind = (
                SuperlativeKind.ARGMAX
                if function == AggregateFunction.MAX
                else SuperlativeKind.ARGMIN
            )
            extreme = _extreme_value(list(values), kind)
            cells = tuple(
                cell for cell in operand.cells if values_equal(cell.value, extreme)
            )
            return ExecutionResult(
                kind=ResultKind.SCALAR,
                cells=cells or operand.cells,
                values=(extreme,),
                aggregates=(function.value,),
            )
        numbers = _as_numbers(values, function.value)
        total = sum(numbers)
        result = total if function == AggregateFunction.SUM else total / len(numbers)
        return ExecutionResult(
            kind=ResultKind.SCALAR,
            cells=operand.cells,
            values=(NumberValue(result),),
            aggregates=(function.value,),
        )

    def _execute_Difference(self, query: ast.Difference) -> ExecutionResult:
        left = self.execute(query.left)
        right = self.execute(query.right)
        left_number = _single_number(left, "left operand of difference")
        right_number = _single_number(right, "right operand of difference")
        return ExecutionResult(
            kind=ResultKind.SCALAR,
            cells=left.cells + right.cells,
            values=(NumberValue(abs(left_number - right_number)),),
            aggregates=("sub",) + left.aggregates + right.aggregates,
        )

    # -- helpers -------------------------------------------------------------------
    def _check_column(self, column: str) -> None:
        if not self.table.has_column(column):
            raise ExecutionError(
                f"table {self.table.name!r} has no column {column!r}"
            )


def execute(query: Query, table: Table) -> ExecutionResult:
    """Convenience wrapper: execute ``query`` against ``table``."""
    return Executor(table).execute(query)


# ---------------------------------------------------------------------------
# value helpers
# ---------------------------------------------------------------------------


def _compare(cell_value: Value, op: ComparisonOperator, reference: Value) -> bool:
    if op == ComparisonOperator.NE:
        return not values_equal(cell_value, reference)
    try:
        left = cell_value.as_number() if cell_value.is_numeric else None
        right = reference.as_number() if reference.is_numeric else None
    except Exception:  # pragma: no cover - defensive
        left = right = None
    if left is not None and right is not None:
        pairs = {
            ComparisonOperator.GT: left > right,
            ComparisonOperator.GE: left >= right,
            ComparisonOperator.LT: left < right,
            ComparisonOperator.LE: left <= right,
        }
        return pairs[op]
    # Fall back to the total order over sort keys (dates, strings).
    key_left, key_right = cell_value.sort_key(), reference.sort_key()
    if key_left[0] != key_right[0]:
        return False
    pairs = {
        ComparisonOperator.GT: key_left > key_right,
        ComparisonOperator.GE: key_left >= key_right,
        ComparisonOperator.LT: key_left < key_right,
        ComparisonOperator.LE: key_left <= key_right,
    }
    return pairs[op]


def _extreme_value(values: List[Value], kind: SuperlativeKind) -> Value:
    if not values:
        raise ExecutionError("superlative over an empty set")
    picker = max if kind == SuperlativeKind.ARGMAX else min
    return picker(values, key=lambda value: value.sort_key())


def _as_numbers(values: Sequence[Value], context: str) -> List[float]:
    numbers = []
    for value in values:
        if not value.is_numeric:
            raise ExecutionError(f"{context} requires numeric values, got {value.display()!r}")
        numbers.append(value.as_number())
    return numbers


def _single_number(result: ExecutionResult, context: str) -> float:
    values = result.values
    if len(values) != 1:
        raise ExecutionError(f"{context} must produce exactly one value, got {len(values)}")
    value = values[0]
    if not value.is_numeric:
        raise ExecutionError(f"{context} must be numeric, got {value.display()!r}")
    return value.as_number()
