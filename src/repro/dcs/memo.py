"""Memoized lambda DCS execution (the deployment hot path, Table 7).

Every question answered by the interface triggers execution of up to
~600 candidate queries against the same table, and those candidates share
most of their sub-trees: ``(column-records "Country" (value "Greece"))``
appears under dozens of aggregates, projections and superlatives.  The
plain :class:`~repro.dcs.executor.Executor` re-walks the table for every
occurrence; :class:`MemoizedExecutor` executes each distinct sub-query
once per table content.

Keys are content-addressed — ``(TableFingerprint, canonical s-expression)``
— so a cache can be shared between executors, threads and even distinct
:class:`~repro.tables.table.Table` objects holding the same data, and can
never alias after an object id is recycled.  Failures are memoized too:
a sub-query that raised keeps raising without re-walking the table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..tables.fingerprint import LRUCache, TableFingerprint
from ..tables.table import Table
from .ast import Query
from .errors import ExecutionError
from .executor import ExecutionResult, Executor
from .sexpr import to_sexpr

#: Default capacity of a shared execution cache.  Entries are small (an
#: :class:`ExecutionResult` holds tuples of cells already owned by the
#: table), so a six-figure bound is cheap and covers hundreds of tables.
DEFAULT_EXECUTION_CACHE_SIZE = 100_000

_MISS = object()


@dataclass(frozen=True)
class _CachedFailure:
    """A memoized execution error (kept distinct from genuine results).

    Only the exception *type and args* are stored, never the raised
    exception object: a live exception drags its ``__traceback__`` along,
    and those frames reference the executor and the table — which would
    keep evicted tables alive and defeat the bounded caches.
    """

    error_type: type
    args: Tuple

    def replay(self) -> ExecutionError:
        return self.error_type(*self.args)


class ExecutionCache:
    """A shared, bounded, thread-safe cache of sub-query execution results.

    Maps ``(TableFingerprint, canonical s-expression)`` to either an
    :class:`~repro.dcs.executor.ExecutionResult` or a memoized
    :class:`~repro.dcs.errors.ExecutionError`.  Both are immutable, so
    cached entries are shared freely across executors and worker threads.
    """

    def __init__(self, maxsize: int = DEFAULT_EXECUTION_CACHE_SIZE) -> None:
        self._lru = LRUCache(maxsize=maxsize)

    # -- cache protocol -------------------------------------------------------
    def lookup(self, fingerprint: TableFingerprint, sexpr: str) -> object:
        """The cached entry for a sub-query, or the module-level miss marker."""
        return self._lru.get((fingerprint, sexpr), _MISS)

    def store(self, fingerprint: TableFingerprint, sexpr: str, entry: object) -> None:
        self._lru.put((fingerprint, sexpr), entry)

    # -- persistence hooks (used by the parser's disk cache) -------------------
    def entries_for(self, fingerprint: TableFingerprint) -> Dict[str, object]:
        """All cached entries of one table content, keyed by s-expression.

        The payload of an on-disk execution bundle: every entry (results
        and memoized failures alike) is immutable and picklable.
        """
        return {
            sexpr: entry
            for (entry_fingerprint, sexpr), entry in self._lru.items()
            if entry_fingerprint == fingerprint
        }

    def load_entries(self, fingerprint: TableFingerprint, entries: Dict[str, object]) -> int:
        """Warm-start the cache from an on-disk bundle; returns entries added.

        Existing (in-memory) entries win — they are byte-equal anyway for
        a deterministic executor, and keeping them avoids LRU churn.
        """
        loaded = 0
        for sexpr, entry in entries.items():
            key = (fingerprint, sexpr)
            if key not in self._lru:
                self._lru.put(key, entry)
                loaded += 1
        return loaded

    def evict_fingerprint(self, fingerprint: TableFingerprint) -> int:
        """Drop every entry of one table content; returns entries removed.

        The shard-eviction hook: a catalog that has persisted a cold
        table's execution bundle to disk removes its in-memory entries so
        the shared cache only holds hot tables.  A later question over the
        same content warm-starts from the disk bundle instead.
        """
        keys = [
            key
            for key in self._lru.keys()
            if key[0] == fingerprint
        ]
        removed = 0
        for key in keys:
            if self._lru.pop(key, _MISS) is not _MISS:
                removed += 1
        return removed

    # -- introspection --------------------------------------------------------
    @property
    def hits(self) -> int:
        return self._lru.hits

    @property
    def misses(self) -> int:
        return self._lru.misses

    @property
    def evictions(self) -> int:
        return self._lru.evictions

    def __len__(self) -> int:
        return len(self._lru)

    def clear(self) -> None:
        self._lru.clear()

    def stats(self) -> Dict[str, int]:
        return self._lru.stats()

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"ExecutionCache({len(self)} entries, hits={self.hits}, misses={self.misses})"


class MemoizedExecutor(Executor):
    """An :class:`Executor` that memoizes every (sub-)query it executes.

    Drop-in result-equivalent to the plain executor (a property test in
    ``tests/test_property_based.py`` locks this in): it produces the same
    :class:`ExecutionResult` — answers, output cells and aggregate markers
    included — and raises the same :class:`ExecutionError` on the same
    inputs.  The only observable difference is speed: each distinct
    sub-tree is executed once per table content.

    Parameters
    ----------
    table:
        The table to execute against.
    cache:
        An optional shared :class:`ExecutionCache`.  Pass the same cache
        to every executor of a deployment so candidates of different
        questions (and different questions over the same table) reuse each
        other's sub-query results; omit it for a private per-executor cache.
    use_index:
        Forwarded to :class:`~repro.dcs.executor.Executor`: answer cache
        misses from the content-addressed column index (default) or from
        plain row scans.
    """

    def __init__(
        self,
        table: Table,
        cache: Optional[ExecutionCache] = None,
        use_index: bool = True,
    ) -> None:
        super().__init__(table, use_index=use_index)
        self.cache = cache if cache is not None else ExecutionCache()
        self._fingerprint = table.fingerprint

    def execute(self, query: Query) -> ExecutionResult:
        """Execute with memoization; recursion memoizes every sub-query."""
        sexpr = to_sexpr(query)
        entry = self.cache.lookup(self._fingerprint, sexpr)
        if entry is not _MISS:
            if isinstance(entry, _CachedFailure):
                raise entry.replay()
            return entry
        try:
            result = super().execute(query)
        except ExecutionError as error:
            self.cache.store(
                self._fingerprint, sexpr, _CachedFailure(type(error), tuple(error.args))
            )
            raise
        self.cache.store(self._fingerprint, sexpr, result)
        return result


def execute_memoized(
    query: Query, table: Table, cache: Optional[ExecutionCache] = None
) -> ExecutionResult:
    """Convenience wrapper mirroring :func:`repro.dcs.executor.execute`."""
    return MemoizedExecutor(table, cache=cache).execute(query)
