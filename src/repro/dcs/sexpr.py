"""S-expression serialisation of lambda DCS queries.

The semantic-parsing literature (SEMPRE, Pasupat & Liang 2015) exchanges
lambda DCS formulas as s-expressions; this module does the same for the
reproduction so that queries can be logged, stored as dataset annotations
and round-tripped through text.

Grammar (informal)::

    query      := "(" head arg* ")"
    head       := operator name, e.g. column-records, aggregate, union ...
    arg        := query | string | number

Examples::

    (column-records "Country" (value "Greece"))
    (aggregate max (column-values "Year" (column-records "Country" (value "Greece"))))
    (difference (column-values "Total" (column-records "Nation" (value "Fiji")))
                (column-values "Total" (column-records "Nation" (value "Tonga"))))
"""

from __future__ import annotations

import re
from typing import List, Sequence, Tuple, Union

from ..tables.values import DateValue, NumberValue, StringValue, Value, parse_value
from . import ast
from .ast import AggregateFunction, ComparisonOperator, Query, SuperlativeKind
from .errors import SexprError

Token = str
Atom = Union[str, float]
Node = Union[Atom, List["Node"]]

_TOKEN_RE = re.compile(r'\(|\)|"(?:[^"\\]|\\.)*"|[^\s()"]+')


# ---------------------------------------------------------------------------
# serialisation
# ---------------------------------------------------------------------------


def to_sexpr(query: Query) -> str:
    """Serialise a query to its canonical s-expression string."""
    return _serialize(query)


def _quote(text: str) -> str:
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def _value_atom(value: Value) -> str:
    if isinstance(value, NumberValue):
        return value.display()
    if isinstance(value, DateValue):
        return _quote(value.display())
    return _quote(value.display())


def _serialize(query: Query) -> str:
    if isinstance(query, ast.ValueLiteral):
        return f"(value {_value_atom(query.value)})"
    if isinstance(query, ast.AllRecords):
        return "(all-records)"
    if isinstance(query, ast.ColumnRecords):
        return f"(column-records {_quote(query.column)} {_serialize(query.value)})"
    if isinstance(query, ast.ComparisonRecords):
        return (
            f"(comparison-records {_quote(query.column)} {query.op.value} "
            f"{_serialize(query.value)})"
        )
    if isinstance(query, ast.PrevRecords):
        return f"(prev-records {_serialize(query.records)})"
    if isinstance(query, ast.NextRecords):
        return f"(next-records {_serialize(query.records)})"
    if isinstance(query, ast.Intersection):
        return f"(intersection {_serialize(query.left)} {_serialize(query.right)})"
    if isinstance(query, ast.JoinRecords):
        return (
            f"(join-records {_quote(query.left_column)} "
            f"{_quote(query.right_column)} {_serialize(query.records)})"
        )
    if isinstance(query, ast.Union):
        return f"(union {_serialize(query.left)} {_serialize(query.right)})"
    if isinstance(query, ast.SuperlativeRecords):
        return (
            f"(superlative-records {query.kind.value} {_quote(query.column)} "
            f"{_serialize(query.records)})"
        )
    if isinstance(query, ast.FirstLastRecords):
        return f"(first-last-records {query.kind.value} {_serialize(query.records)})"
    if isinstance(query, ast.ColumnValues):
        return f"(column-values {_quote(query.column)} {_serialize(query.records)})"
    if isinstance(query, ast.IndexSuperlative):
        return (
            f"(index-superlative {query.kind.value} {_quote(query.column)} "
            f"{_serialize(query.records)})"
        )
    if isinstance(query, ast.MostCommonValue):
        return (
            f"(most-common {query.kind.value} {_quote(query.column)} "
            f"{_serialize(query.values)})"
        )
    if isinstance(query, ast.CompareValues):
        return (
            f"(compare-values {query.kind.value} {_quote(query.key_column)} "
            f"{_quote(query.value_column)} {_serialize(query.values)})"
        )
    if isinstance(query, ast.Aggregate):
        return f"(aggregate {query.function.value} {_serialize(query.operand)})"
    if isinstance(query, ast.Difference):
        return f"(difference {_serialize(query.left)} {_serialize(query.right)})"
    raise SexprError(f"cannot serialise {type(query).__name__}")


# ---------------------------------------------------------------------------
# parsing
# ---------------------------------------------------------------------------


def from_sexpr(text: str) -> Query:
    """Parse an s-expression string back into a :class:`Query`."""
    tree, remainder = _read(_tokenize(text))
    if remainder:
        raise SexprError(f"trailing tokens after query: {remainder!r}")
    return _build(tree)


def _tokenize(text: str) -> List[Token]:
    tokens = _TOKEN_RE.findall(text)
    if not tokens:
        raise SexprError("empty s-expression")
    return tokens


def _read(tokens: Sequence[Token]) -> Tuple[Node, List[Token]]:
    if not tokens:
        raise SexprError("unexpected end of input")
    head, rest = tokens[0], list(tokens[1:])
    if head == "(":
        items: List[Node] = []
        while rest and rest[0] != ")":
            item, rest = _read(rest)
            items.append(item)
        if not rest:
            raise SexprError("missing closing parenthesis")
        return items, rest[1:]
    if head == ")":
        raise SexprError("unexpected closing parenthesis")
    return _atom(head), rest


def _atom(token: Token) -> Atom:
    if token.startswith('"') and token.endswith('"'):
        return token[1:-1].replace('\\"', '"').replace("\\\\", "\\")
    return token


def _expect_list(node: Node, context: str) -> List[Node]:
    if not isinstance(node, list) or not node:
        raise SexprError(f"expected a list for {context}, got {node!r}")
    return node


def _string(node: Node, context: str) -> str:
    if isinstance(node, list):
        raise SexprError(f"expected a string for {context}, got a list")
    return str(node)


def _literal_value(atom: Node) -> Value:
    if isinstance(atom, list):
        raise SexprError(f"expected a literal value, got {atom!r}")
    return parse_value(atom)


def _superlative(token: Node, context: str) -> SuperlativeKind:
    name = _string(token, context)
    try:
        return SuperlativeKind(name)
    except ValueError:
        raise SexprError(f"unknown superlative kind {name!r}") from None


def _build(node: Node) -> Query:
    items = _expect_list(node, "query")
    head = _string(items[0], "operator")
    args = items[1:]

    def arity(n: int) -> None:
        if len(args) != n:
            raise SexprError(f"{head} expects {n} argument(s), got {len(args)}")

    if head == "value":
        arity(1)
        return ast.ValueLiteral(_literal_value(args[0]))
    if head == "all-records":
        if args:
            raise SexprError("all-records takes no arguments")
        return ast.AllRecords()
    if head == "column-records":
        arity(2)
        return ast.ColumnRecords(_string(args[0], "column"), _build(args[1]))
    if head == "comparison-records":
        arity(3)
        op_name = _string(args[1], "comparison operator")
        try:
            op = ComparisonOperator(op_name)
        except ValueError:
            raise SexprError(f"unknown comparison operator {op_name!r}") from None
        return ast.ComparisonRecords(_string(args[0], "column"), op, _build(args[2]))
    if head == "prev-records":
        arity(1)
        return ast.PrevRecords(_build(args[0]))
    if head == "next-records":
        arity(1)
        return ast.NextRecords(_build(args[0]))
    if head == "intersection":
        arity(2)
        return ast.Intersection(_build(args[0]), _build(args[1]))
    if head == "join-records":
        arity(3)
        return ast.JoinRecords(
            _string(args[0], "left column"),
            _string(args[1], "right column"),
            _build(args[2]),
        )
    if head == "union":
        arity(2)
        return ast.Union(_build(args[0]), _build(args[1]))
    if head == "superlative-records":
        arity(3)
        return ast.SuperlativeRecords(
            _superlative(args[0], "kind"), _string(args[1], "column"), _build(args[2])
        )
    if head == "first-last-records":
        arity(2)
        return ast.FirstLastRecords(_superlative(args[0], "kind"), _build(args[1]))
    if head == "column-values":
        arity(2)
        return ast.ColumnValues(_string(args[0], "column"), _build(args[1]))
    if head == "index-superlative":
        arity(3)
        return ast.IndexSuperlative(
            _superlative(args[0], "kind"), _string(args[1], "column"), _build(args[2])
        )
    if head == "most-common":
        arity(3)
        return ast.MostCommonValue(
            column=_string(args[1], "column"),
            values=_build(args[2]),
            kind=_superlative(args[0], "kind"),
        )
    if head == "compare-values":
        arity(4)
        return ast.CompareValues(
            kind=_superlative(args[0], "kind"),
            key_column=_string(args[1], "key column"),
            value_column=_string(args[2], "value column"),
            values=_build(args[3]),
        )
    if head == "aggregate":
        arity(2)
        function_name = _string(args[0], "aggregate function")
        try:
            function = AggregateFunction(function_name)
        except ValueError:
            raise SexprError(f"unknown aggregate function {function_name!r}") from None
        return ast.Aggregate(function, _build(args[1]))
    if head == "difference":
        arity(2)
        return ast.Difference(_build(args[0]), _build(args[1]))
    raise SexprError(f"unknown operator {head!r}")
