"""Static validation of lambda DCS queries against a table.

A query can be *well-formed* (the AST constructors enforce operand kinds)
yet still be *invalid for a specific table* — it may reference a column the
table does not have, aggregate a textual column, or compare values in a
column that holds strings.  The semantic parser generates thousands of
candidates per question, so cheap static validation before execution both
speeds candidate pruning and produces clearer error messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..tables.schema import TableSchema, infer_schema
from ..tables.table import Table
from . import ast
from .ast import AggregateFunction, Query


@dataclass(frozen=True)
class ValidationIssue:
    """One problem found while validating a query against a table."""

    query: Query
    message: str

    def __str__(self) -> str:
        return f"{self.query.operator_name}: {self.message}"


@dataclass(frozen=True)
class ValidationReport:
    """The outcome of validating a query against a table."""

    issues: Tuple[ValidationIssue, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.issues

    def __bool__(self) -> bool:
        return self.ok


def validate(query: Query, table: Table, schema: TableSchema = None) -> ValidationReport:
    """Validate every node of ``query`` against ``table``.

    Checks performed:

    * every referenced column exists in the table,
    * ``sum``/``avg`` aggregate only numeric columns,
    * superlatives / comparisons / difference use comparable (numeric or
      date) columns,
    * the table is non-empty.
    """
    schema = schema or infer_schema(table)
    issues: List[ValidationIssue] = []
    if table.num_rows == 0:
        issues.append(ValidationIssue(query, "table has no rows"))

    for node in query.walk():
        for column in node._own_columns():
            if not table.has_column(column):
                issues.append(ValidationIssue(node, f"unknown column {column!r}"))
        issues.extend(_node_issues(node, table, schema))
    return ValidationReport(issues=tuple(issues))


def validate_composed(
    query: Query,
    primary: Table,
    secondary: Table,
    primary_schema: TableSchema = None,
    secondary_schema: TableSchema = None,
) -> ValidationReport:
    """Validate a cross-table query against its (primary, secondary) pair.

    Everything strictly below the single :class:`~repro.dcs.ast.JoinRecords`
    node answers from ``secondary``; the join's ``left_column`` and every
    node above it answer from ``primary``.  The join's ``right_column``
    must exist in ``secondary``.  Exactly one join is supported — the
    two-table scope of the composition subsystem.
    """
    primary_schema = primary_schema or infer_schema(primary)
    secondary_schema = secondary_schema or infer_schema(secondary)
    issues: List[ValidationIssue] = []
    if primary.num_rows == 0:
        issues.append(ValidationIssue(query, "primary table has no rows"))

    joins = [node for node in query.walk() if isinstance(node, ast.JoinRecords)]
    if not joins:
        issues.append(
            ValidationIssue(query, "composed query has no join-records node")
        )
        return ValidationReport(issues=tuple(issues))
    if len(joins) > 1:
        issues.append(
            ValidationIssue(
                query, f"composed queries support exactly one join, got {len(joins)}"
            )
        )
        return ValidationReport(issues=tuple(issues))
    join = joins[0]
    if not secondary.has_column(join.right_column):
        issues.append(
            ValidationIssue(
                join, f"unknown column {join.right_column!r} in secondary table"
            )
        )

    # The right subtree validates against the secondary table (its own
    # empty-rows check included) ...
    issues.extend(validate(join.records, secondary, secondary_schema).issues)
    # ... and every node outside it against the primary.
    secondary_nodes = {id(node) for node in join.records.walk()}
    for node in query.walk():
        if id(node) in secondary_nodes:
            continue
        for column in node._own_columns():
            if not primary.has_column(column):
                issues.append(ValidationIssue(node, f"unknown column {column!r}"))
        issues.extend(_node_issues(node, primary, primary_schema))
    return ValidationReport(issues=tuple(issues))


def _node_issues(node: Query, table: Table, schema: TableSchema) -> List[ValidationIssue]:
    issues: List[ValidationIssue] = []

    def comparable(column: str) -> bool:
        return table.has_column(column) and (
            schema.column(column).is_numeric or schema.column(column).is_date
        )

    if isinstance(node, ast.Aggregate):
        if node.function in (AggregateFunction.SUM, AggregateFunction.AVG):
            for column in node.operand._own_columns():
                if table.has_column(column) and not schema.column(column).is_numeric:
                    issues.append(
                        ValidationIssue(
                            node,
                            f"{node.function.value} over non-numeric column {column!r}",
                        )
                    )
    elif isinstance(node, ast.SuperlativeRecords):
        if table.has_column(node.column) and not comparable(node.column):
            issues.append(
                ValidationIssue(node, f"superlative over non-comparable column {node.column!r}")
            )
    elif isinstance(node, ast.ComparisonRecords):
        if table.has_column(node.column) and not comparable(node.column):
            issues.append(
                ValidationIssue(node, f"comparison over non-comparable column {node.column!r}")
            )
    elif isinstance(node, ast.CompareValues):
        if table.has_column(node.key_column) and not comparable(node.key_column):
            issues.append(
                ValidationIssue(
                    node, f"comparison key column {node.key_column!r} is not comparable"
                )
            )
    elif isinstance(node, ast.Difference):
        for operand in node.children():
            for column in operand._own_columns():
                if table.has_column(column) and not comparable(column):
                    # Count differences are fine on any column; only flag when the
                    # operand directly projects the column's values.
                    if isinstance(operand, ast.ColumnValues) and operand.column == column:
                        issues.append(
                            ValidationIssue(
                                node,
                                f"difference over non-numeric column {column!r}",
                            )
                        )
    return issues
