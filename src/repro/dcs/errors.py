"""Exceptions raised by the lambda DCS subsystem."""

from __future__ import annotations


class DCSError(Exception):
    """Base class for every lambda DCS error."""


class QueryTypeError(DCSError):
    """A query was built with operands of the wrong result kind."""


class ExecutionError(DCSError):
    """A well-formed query could not be executed against the given table."""


class EmptyResultError(ExecutionError):
    """An operator that requires a non-empty operand received an empty set."""


class SexprError(DCSError):
    """A query s-expression could not be parsed."""
