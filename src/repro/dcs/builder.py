"""Fluent construction helpers for lambda DCS queries.

The AST constructors in :mod:`repro.dcs.ast` are precise but verbose.  The
helpers below read close to the paper's notation::

    from repro.dcs import builder as q

    # R[Year].Country.Greece
    q.column_values("Year", q.column_records("Country", "Greece"))

    # max(R[Year].Country.Greece)
    q.max_(q.column_values("Year", q.column_records("Country", "Greece")))

    # sub(R[Total].Nation.Fiji, R[Total].Nation.Tonga)
    q.difference(
        q.column_values("Total", q.column_records("Nation", "Fiji")),
        q.column_values("Total", q.column_records("Nation", "Tonga")),
    )

Raw python values (strings, numbers) are promoted to
:class:`~repro.dcs.ast.ValueLiteral` automatically.
"""

from __future__ import annotations

from typing import Union

from ..tables.values import RawValue, Value, parse_value
from . import ast
from .ast import AggregateFunction, ComparisonOperator, Query, SuperlativeKind

Operand = Union[Query, RawValue]


def value(raw: Operand) -> Query:
    """Promote a python value to a :class:`ValueLiteral` (queries pass through)."""
    if isinstance(raw, Query):
        return raw
    return ast.ValueLiteral(parse_value(raw))


def all_records() -> ast.AllRecords:
    """The ``Record`` unary — every row of the table."""
    return ast.AllRecords()


def column_records(column: str, target: Operand) -> ast.ColumnRecords:
    """``C.v`` — rows where ``column`` equals ``target``."""
    return ast.ColumnRecords(column, value(target))


def comparison_records(column: str, op: Union[str, ComparisonOperator], target: Operand) -> ast.ComparisonRecords:
    """Rows where ``column`` compares against ``target`` (``>``, ``>=``, ``<``, ``<=``, ``!=``)."""
    if isinstance(op, str):
        op = ComparisonOperator(op)
    return ast.ComparisonRecords(column, op, value(target))


def prev_records(records: Query) -> ast.PrevRecords:
    """Rows right above ``records``."""
    return ast.PrevRecords(records)


def next_records(records: Query) -> ast.NextRecords:
    """Rows right below ``records``."""
    return ast.NextRecords(records)


def intersection(left: Query, right: Query) -> ast.Intersection:
    """``records1 ⊓ records2``."""
    return ast.Intersection(left, right)


def join_records(
    left_column: str, right_column: str, records: Query
) -> ast.JoinRecords:
    """``T1 ⋉ T2`` — primary rows whose ``left_column`` matches
    ``right_column`` of the given secondary-table ``records``."""
    return ast.JoinRecords(left_column, right_column, records)


def union(left: Operand, right: Operand) -> ast.Union:
    """``vals1 ⊔ vals2`` (or union of record sets)."""
    return ast.Union(value(left), value(right))


def column_values(column: str, records: Query) -> ast.ColumnValues:
    """``R[C].records`` — values of ``column`` in ``records``."""
    return ast.ColumnValues(column, records)


def argmax_records(column: str, records: Query = None) -> ast.SuperlativeRecords:
    """Rows with the highest value in ``column`` (defaults to all rows)."""
    return ast.SuperlativeRecords(SuperlativeKind.ARGMAX, column, records or all_records())


def argmin_records(column: str, records: Query = None) -> ast.SuperlativeRecords:
    """Rows with the lowest value in ``column`` (defaults to all rows)."""
    return ast.SuperlativeRecords(SuperlativeKind.ARGMIN, column, records or all_records())


def last_record(records: Query = None) -> ast.FirstLastRecords:
    """The last row (highest index) of a record set."""
    return ast.FirstLastRecords(SuperlativeKind.ARGMAX, records or all_records())


def first_record(records: Query = None) -> ast.FirstLastRecords:
    """The first row (lowest index) of a record set."""
    return ast.FirstLastRecords(SuperlativeKind.ARGMIN, records or all_records())


def value_in_last_record(column: str, records: Query = None) -> ast.IndexSuperlative:
    """``R[C].argmax(records, Index)`` — value of ``column`` in the last row."""
    return ast.IndexSuperlative(SuperlativeKind.ARGMAX, column, records or all_records())


def value_in_first_record(column: str, records: Query = None) -> ast.IndexSuperlative:
    """``R[C].argmin(records, Index)`` — value of ``column`` in the first row."""
    return ast.IndexSuperlative(SuperlativeKind.ARGMIN, column, records or all_records())


def most_common(column: str, values: Query = None) -> ast.MostCommonValue:
    """The value appearing the most in ``column`` (restricted to ``values`` if given)."""
    operand = values if values is not None else column_values(column, all_records())
    return ast.MostCommonValue(column=column, values=operand, kind=SuperlativeKind.ARGMAX)


def least_common(column: str, values: Query = None) -> ast.MostCommonValue:
    """The value appearing the least in ``column`` (restricted to ``values`` if given)."""
    operand = values if values is not None else column_values(column, all_records())
    return ast.MostCommonValue(column=column, values=operand, kind=SuperlativeKind.ARGMIN)


def compare_values(
    key_column: str,
    value_column: str,
    candidates: Query,
    kind: Union[str, SuperlativeKind] = SuperlativeKind.ARGMAX,
) -> ast.CompareValues:
    """``argmax(vals, R[λx.R[C1].C2.x])`` — pick the candidate with extreme key."""
    if isinstance(kind, str):
        kind = SuperlativeKind(kind)
    return ast.CompareValues(
        kind=kind, key_column=key_column, value_column=value_column, values=candidates
    )


def aggregate(function: Union[str, AggregateFunction], operand: Query) -> ast.Aggregate:
    """``aggr(operand)``."""
    if isinstance(function, str):
        function = AggregateFunction(function)
    return ast.Aggregate(function, operand)


def count(operand: Query) -> ast.Aggregate:
    return aggregate(AggregateFunction.COUNT, operand)


def max_(operand: Query) -> ast.Aggregate:
    return aggregate(AggregateFunction.MAX, operand)


def min_(operand: Query) -> ast.Aggregate:
    return aggregate(AggregateFunction.MIN, operand)


def sum_(operand: Query) -> ast.Aggregate:
    return aggregate(AggregateFunction.SUM, operand)


def avg(operand: Query) -> ast.Aggregate:
    return aggregate(AggregateFunction.AVG, operand)


def difference(left: Query, right: Query) -> ast.Difference:
    """``sub(left, right)``."""
    return ast.Difference(left, right)


def count_difference(column: str, left: Operand, right: Operand) -> ast.Difference:
    """``sub(count(C.v), count(C.u))`` — difference of value occurrences."""
    return difference(
        count(column_records(column, left)), count(column_records(column, right))
    )


def value_difference(value_column: str, where_column: str, left: Operand, right: Operand) -> ast.Difference:
    """``sub(R[C1].C2.v, R[C1].C2.u)`` — difference of values (paper Figure 6)."""
    return difference(
        column_values(value_column, column_records(where_column, left)),
        column_values(value_column, column_records(where_column, right)),
    )
