"""Two-table execution: the :class:`ComposedExecutor`.

A composed query is a single-table lambda DCS tree with one
:class:`~repro.dcs.ast.JoinRecords` bridge in it: everything strictly
below the bridge answers from the *secondary* table, the bridge itself
and everything above it from the *primary*.  The bridge is a semi-join —
primary records whose ``left_column`` cell ``values_equal``-matches some
``right_column`` value of the selected secondary records — so its result
is an ordinary RECORDS set of the primary table and every single-table
operator composes above it unchanged.

The executor reuses the primary table's
:class:`~repro.tables.index.ColumnIndex` for the join probe
(``equality_candidates`` superset + ``values_equal`` confirm, the same
two-step contract as single-table equality selection), which makes the
join cost ``O(matching rows)`` instead of ``O(|T1| × |T2|)``.

Join provenance — the matched ``(left_row, right_row)`` pairs, in
deterministic sorted order — is recorded on the executor after each
execution (:attr:`ComposedExecutor.join_pairs`) so the composition layer
can report which rows of which shard produced the answer.
"""

from __future__ import annotations

from typing import List, Tuple

from ..dcs import ast
from ..dcs.errors import ExecutionError
from ..dcs.executor import ExecutionResult, Executor
from ..dcs.ast import Query, ResultKind
from ..tables.table import Table
from ..tables.values import values_equal


class ComposedExecutor(Executor):
    """Executes composed (one-join) queries over a (primary, secondary) pair.

    Subclasses the single-table :class:`~repro.dcs.executor.Executor`
    bound to the primary table and adds the one cross-table rule: the
    :class:`~repro.dcs.ast.JoinRecords` subtree is evaluated by a
    dedicated executor over the secondary table.
    """

    def __init__(
        self, primary: Table, secondary: Table, use_index: bool = True
    ) -> None:
        super().__init__(primary, use_index=use_index)
        self.secondary = secondary
        self._secondary_executor = Executor(secondary, use_index=use_index)
        #: Deterministic ``(left_row, right_row)`` matches of the most
        #: recent join execution — the cross-shard provenance record.
        self.join_pairs: Tuple[Tuple[int, int], ...] = ()

    def _execute_JoinRecords(self, query: ast.JoinRecords) -> ExecutionResult:
        right = self._secondary_executor.execute(query.records)
        self._check_column(query.left_column)
        if not self.secondary.has_column(query.right_column):
            raise ExecutionError(
                f"secondary table {self.secondary.name!r} has no column "
                f"{query.right_column!r}"
            )
        left_cells = self.table.column_cells(query.left_column)
        right_cells = self.secondary.column_cells(query.right_column)
        pairs: List[Tuple[int, int]] = []
        seen_left = set()
        for right_row in sorted(right.record_indices):
            target = right_cells[right_row].value
            if self._index is not None:
                matches = self._equal_rows(query.left_column, (target,))
            else:
                matches = [
                    cell.row_index
                    for cell in left_cells
                    if values_equal(cell.value, target)
                ]
            for left_row in matches:
                pairs.append((left_row, right_row))
                seen_left.add(left_row)
        # Duplicate keys on either side fan out to one pair per
        # combination; the sort fixes the order regardless of probe order.
        pairs.sort()
        self.join_pairs = tuple(pairs)
        indices = frozenset(seen_left)
        cells = tuple(left_cells[row] for row in sorted(indices))
        return ExecutionResult(
            kind=ResultKind.RECORDS, record_indices=indices, cells=cells
        )


def execute_composed(
    query: Query, primary: Table, secondary: Table
) -> ExecutionResult:
    """Convenience wrapper: execute a composed ``query`` over the pair."""
    return ComposedExecutor(primary, secondary).execute(query)
