"""Cross-table composition: join execution, planning, composed answers.

The subsystem that lifts the reproduction past single-table scope
(ROADMAP item 3): one :class:`~repro.dcs.ast.JoinRecords` bridge node in
the DCS tree, executed over a (primary, secondary) table pair by
:class:`ComposedExecutor`, planned lexically by :class:`JoinPlanner`,
verified against the two-table SQL translation
(:func:`repro.sql.check_composed_equivalence`), and surfaced as a
:class:`ComposedAnswer` with cross-shard join provenance through
``ask_any`` → the engine → the v2 wire envelope.
"""

from .answer import ComposedAnswer, JoinProvenance
from .compose import compose_answer, compose_pair
from .executor import ComposedExecutor, execute_composed
from .planner import JoinPlan, JoinPlanner, joinable_columns

__all__ = [
    "ComposedAnswer",
    "JoinProvenance",
    "ComposedExecutor",
    "execute_composed",
    "JoinPlan",
    "JoinPlanner",
    "joinable_columns",
    "compose_answer",
    "compose_pair",
]
