"""The :class:`ComposedAnswer` — a cross-shard answer with join provenance.

The provenance model extends the paper's single-table cell provenance to
the two-table case: besides the answer values, a composed answer records
*which shard played which role* (primary answers, secondary restricts),
the join key pair, and the exact ``(left_row, right_row)`` matches the
semi-join produced, in deterministic sorted order.  Everything is
JSON-safe and round-trips losslessly — the v2 wire envelope embeds these
dicts verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Tuple


@dataclass(frozen=True)
class JoinProvenance:
    """Which rows of which shards the composed answer came from."""

    primary_digest: str
    primary_name: str
    secondary_digest: str
    secondary_name: str
    left_column: str
    right_column: str
    #: Sorted ``(primary_row, secondary_row)`` matches of the semi-join.
    join_pairs: Tuple[Tuple[int, int], ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "primary": {"digest": self.primary_digest, "name": self.primary_name},
            "secondary": {
                "digest": self.secondary_digest,
                "name": self.secondary_name,
            },
            "on": {"left": self.left_column, "right": self.right_column},
            "join_pairs": [list(pair) for pair in self.join_pairs],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "JoinProvenance":
        return cls(
            primary_digest=payload["primary"]["digest"],
            primary_name=payload["primary"]["name"],
            secondary_digest=payload["secondary"]["digest"],
            secondary_name=payload["secondary"]["name"],
            left_column=payload["on"]["left"],
            right_column=payload["on"]["right"],
            join_pairs=tuple(
                (int(pair[0]), int(pair[1])) for pair in payload["join_pairs"]
            ),
        )


@dataclass(frozen=True)
class ComposedAnswer:
    """A multi-shard answer: values, the composed query, provenance."""

    question: str
    answer: Tuple[str, ...]
    sexpr: str
    utterance: str
    provenance: JoinProvenance
    #: Joint retrieval score of the shard set that proposed the pair.
    retrieval_score: float = 0.0
    #: Wall-clock of planning + validation + execution.
    seconds: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "question": self.question,
            "answer": list(self.answer),
            "sexpr": self.sexpr,
            "utterance": self.utterance,
            "provenance": self.provenance.to_dict(),
            "retrieval_score": self.retrieval_score,
            "seconds": self.seconds,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ComposedAnswer":
        return cls(
            question=payload["question"],
            answer=tuple(payload["answer"]),
            sexpr=payload["sexpr"],
            utterance=payload["utterance"],
            provenance=JoinProvenance.from_dict(payload["provenance"]),
            retrieval_score=float(payload["retrieval_score"]),
            seconds=float(payload["seconds"]),
        )
