"""Deterministic lexical planning of cross-table join queries.

The single-table semantic parser scores thousands of candidate trees per
question; composition does not need that machinery to be *honest* — it
needs a deterministic baseline whose every answer is checked against the
translated two-table SQL oracle.  :class:`JoinPlanner` builds exactly
one candidate per (question, primary, secondary) ordering, from three
lexical anchors:

* the **anchor**: a secondary-table cell value whose text appears in the
  question (longest match wins) — the entity the question pivots on;
* the **join key**: the ``(left_column, right_column)`` pair with the
  largest ``values_equal`` overlap between the two tables (computed on
  the same quantized keys the value classes hash with, so
  string↔number re-parse bridges count as overlap);
* the **target**: a primary-table column whose header appears in the
  question — the attribute the question asks for.

The plan is always the same shape::

    (column-values TARGET
      (join-records LEFT RIGHT
        (column-records ANCHOR_COL (value ANCHOR))))

Any missing anchor returns ``None`` — the composition layer then tries
the reversed table ordering, and gives up quietly if neither works.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..dcs import ast, builder
from ..dcs.ast import Query
from ..tables.table import Table
from ..tables.values import (
    DateValue,
    NumberValue,
    StringValue,
    Value,
    parse_value,
)

_NON_WORD_RE = re.compile(r"[^0-9a-z]+")


def _normalize(text: str) -> str:
    return " ".join(_NON_WORD_RE.sub(" ", text.lower()).split())


def _contains_phrase(question: str, phrase: str) -> bool:
    return phrase != "" and f" {phrase} " in f" {question} "


def _join_key(value: Value):
    """A hashable key approximating ``values_equal`` for overlap counting.

    Strings re-parse (the cross-type bridge: ``"2004"`` overlaps the
    number ``2004``), numbers and bare-year dates land on the
    :class:`NumberValue` 1e-9 quantization grid, NaN never joins
    (returns ``None``).  Equal keys imply ``values_equal``; the executor
    still confirms every probe exactly, so this only has to be a sound
    under-approximation for *ranking* key pairs.
    """
    if isinstance(value, StringValue):
        reparsed = parse_value(value.text)
        if not isinstance(reparsed, StringValue):
            return _join_key(reparsed)
        return ("str", value.normalized) if value.normalized else None
    if isinstance(value, NumberValue):
        if math.isnan(value.number):
            return None
        return ("num", round(value.number * 10**9))
    if isinstance(value, DateValue):
        if value.is_numeric:
            return ("num", round(value.as_number() * 10**9))
        return ("date", value.year, value.month, value.day)
    return None


def _column_keys(table: Table) -> Dict[str, Set]:
    out: Dict[str, Set] = {}
    for column in table.columns:
        keys = set()
        for cell in table.column_cells(column):
            key = _join_key(cell.value)
            if key is not None:
                keys.add(key)
        out[column] = keys
    return out


def joinable_columns(
    primary: Table, secondary: Table, min_overlap: int = 1
) -> List[Tuple[str, str, int]]:
    """Every ``(left, right, overlap)`` pair with enough shared keys.

    Sorted by overlap descending, ties broken by schema column order —
    the deterministic ranking the planner picks its join key from.
    """
    left_keys = _column_keys(primary)
    right_keys = _column_keys(secondary)
    pairs: List[Tuple[str, str, int]] = []
    for left_position, left in enumerate(primary.columns):
        for right_position, right in enumerate(secondary.columns):
            overlap = len(left_keys[left] & right_keys[right])
            if overlap >= min_overlap:
                pairs.append((left, right, overlap))
    left_order = {name: i for i, name in enumerate(primary.columns)}
    right_order = {name: i for i, name in enumerate(secondary.columns)}
    pairs.sort(key=lambda p: (-p[2], left_order[p[0]], right_order[p[1]]))
    return pairs


@dataclass(frozen=True)
class JoinPlan:
    """One planned composed query plus the anchors that produced it."""

    query: Query
    target_column: str
    left_column: str
    right_column: str
    anchor_column: str
    anchor_value: Value
    key_overlap: int

    @property
    def anchor_display(self) -> str:
        return self.anchor_value.display()


class JoinPlanner:
    """Builds the one deterministic join candidate for a table pair.

    ``min_key_overlap`` is the smallest shared-key count a column pair
    must have to qualify as a join key (2 by default: a single shared
    value is indistinguishable from coincidence in small tables).
    """

    def __init__(self, min_key_overlap: int = 2) -> None:
        self.min_key_overlap = min_key_overlap

    def plan(
        self, question: str, primary: Table, secondary: Table
    ) -> Optional[JoinPlan]:
        normalized = _normalize(question)
        pairs = joinable_columns(primary, secondary, self.min_key_overlap)
        if not pairs:
            return None
        left_column, right_column, overlap = pairs[0]

        anchor = self._find_anchor(normalized, secondary, right_column)
        if anchor is None:
            return None
        anchor_column, anchor_value = anchor

        target = self._find_target(normalized, primary, left_column)
        if target is None:
            return None

        query = builder.column_values(
            target,
            builder.join_records(
                left_column,
                right_column,
                builder.column_records(anchor_column, ast.ValueLiteral(anchor_value)),
            ),
        )
        return JoinPlan(
            query=query,
            target_column=target,
            left_column=left_column,
            right_column=right_column,
            anchor_column=anchor_column,
            anchor_value=anchor_value,
            key_overlap=overlap,
        )

    def _find_anchor(
        self, question: str, secondary: Table, right_column: str
    ) -> Optional[Tuple[str, Value]]:
        """The longest secondary cell text present in the question.

        Prefers anchors *off* the join column — an anchor on the join
        key itself answers from one table and needs no composition —
        but falls back to it when nothing else matches.
        """
        best: Optional[Tuple[int, int, int, str, Value]] = None
        for position, column in enumerate(secondary.columns):
            for cell in secondary.column_cells(column):
                phrase = _normalize(cell.display())
                if not _contains_phrase(question, phrase):
                    continue
                on_join_key = 1 if column == right_column else 0
                rank = (on_join_key, -len(phrase), position)
                if best is None or rank < best[:3]:
                    best = rank + (column, cell.value)
        if best is None:
            return None
        return best[3], best[4]

    def _find_target(
        self, question: str, primary: Table, left_column: str
    ) -> Optional[str]:
        """The longest primary header present in the question (not the key)."""
        best: Optional[Tuple[int, int, str]] = None
        for position, column in enumerate(primary.columns):
            if column == left_column:
                continue
            phrase = _normalize(column)
            if not _contains_phrase(question, phrase):
                continue
            rank = (-len(phrase), position)
            if best is None or rank < best[:2]:
                best = rank + (column,)
        if best is None:
            return None
        return best[2]
