"""Composition orchestration: plan → validate → execute → answer.

:func:`compose_answer` is the one entry point the catalog (and the
bench) calls for a candidate shard pair.  It tries the pair in both
orderings — the planner needs the question's *target* header in the
primary table and its *anchor* value in the secondary, and only one
ordering has that — validates the plan with
:func:`~repro.dcs.typing.validate_composed`, executes it with the
:class:`~repro.compose.executor.ComposedExecutor`, and returns a
:class:`~repro.compose.answer.ComposedAnswer` carrying the join
provenance.  Any failure (no plan, invalid plan, execution error, empty
answer) returns ``None``: composition is strictly additive and must
never break the single-shard path.
"""

from __future__ import annotations

import time
from typing import Optional, Tuple

from ..dcs.errors import DCSError
from ..dcs.sexpr import to_sexpr
from ..dcs.typing import validate_composed
from ..tables.table import Table
from .answer import ComposedAnswer, JoinProvenance
from .executor import ComposedExecutor
from .planner import JoinPlan, JoinPlanner


def _utterance(plan: JoinPlan, primary: Table, secondary: Table) -> str:
    return (
        f"values in column {plan.target_column} of table {primary.name} "
        f"joined to table {secondary.name} on "
        f"{plan.left_column} = {plan.right_column} "
        f"in rows where value of column {plan.anchor_column} "
        f"is {plan.anchor_display}"
    )


def compose_pair(
    question: str,
    primary: Table,
    secondary: Table,
    planner: Optional[JoinPlanner] = None,
    retrieval_score: float = 0.0,
) -> Optional[ComposedAnswer]:
    """Compose over one *oriented* (primary, secondary) pair, or ``None``."""
    started = time.perf_counter()
    planner = planner or JoinPlanner()
    plan = planner.plan(question, primary, secondary)
    if plan is None:
        return None
    if not validate_composed(plan.query, primary, secondary):
        return None
    executor = ComposedExecutor(primary, secondary)
    try:
        result = executor.execute(plan.query)
    except DCSError:
        return None
    if result.is_empty:
        return None
    provenance = JoinProvenance(
        primary_digest=primary.fingerprint.digest,
        primary_name=primary.name,
        secondary_digest=secondary.fingerprint.digest,
        secondary_name=secondary.name,
        left_column=plan.left_column,
        right_column=plan.right_column,
        join_pairs=executor.join_pairs,
    )
    return ComposedAnswer(
        question=question,
        answer=result.answer_strings(),
        sexpr=to_sexpr(plan.query),
        utterance=_utterance(plan, primary, secondary),
        provenance=provenance,
        retrieval_score=retrieval_score,
        seconds=time.perf_counter() - started,
    )


def compose_answer(
    question: str,
    first: Table,
    second: Table,
    planner: Optional[JoinPlanner] = None,
    retrieval_score: float = 0.0,
) -> Optional[ComposedAnswer]:
    """Compose over an *unoriented* table pair: try both orderings.

    The ordering whose primary table holds the question's target header
    (and whose secondary holds the anchor entity) succeeds; the other
    returns ``None`` at planning.  When both succeed — the tables are
    symmetric enough that either could answer — the first ordering wins,
    so the result is deterministic in the caller's pair order.
    """
    for primary, secondary in ((first, second), (second, first)):
        answer = compose_pair(
            question,
            primary,
            secondary,
            planner=planner,
            retrieval_score=retrieval_score,
        )
        if answer is not None:
            return answer
    return None
