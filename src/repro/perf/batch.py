"""Concurrent batch parsing with per-question timing.

The interactive deployment (Sections 6–8 of the paper) answers a stream of
questions; Table 7 reports execution time as a first-class result.  This
module provides the throughput-oriented entry point: a
:class:`BatchParser` that drives one shared :class:`SemanticParser` over a
sequence of ``(question, table)`` pairs with a thread pool.

Correctness contract (locked in by ``tests/test_perf_batch.py``): results
are **order-stable** — ``results[i]`` always answers ``items[i]`` — and
**bit-identical** to a sequential loop over the same parser configuration,
for any pool size and either backend.  This holds because candidate
generation is deterministic and all shared caches are content-addressed
and thread-safe; workers only ever *add* identical entries.

Two pool backends, selectable via ``BatchParser(backend=...)``:

* ``"thread"`` (default) — one shared parser, all caches shared across
  the pool.  GIL-bound for cold parses, but warm questions are nearly
  free and every parse warms the caches for later traffic.
* ``"process"`` — true parallelism via
  :class:`~repro.perf.procpool.ProcessPoolBackend`: tables ship once per
  worker (fingerprint-addressed), work units are deduplicated
  ``(fingerprint, question)`` pairs, and cold candidate generation
  finally scales with cores.  Worker caches are process-private; share a
  ``ParserConfig.disk_cache_dir`` to persist their work across runs.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, List, Optional, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - typing only (runtime import is lazy)
    from .pool import WorkerPool

#: The pool backends accepted by :class:`BatchParser`.
BACKENDS = ("thread", "process")

from ..parser.candidates import ParseOutput, SemanticParser
from ..tables.table import Table

#: Input accepted by :meth:`BatchParser.parse_all`.
BatchInput = Union["BatchItem", Tuple[str, Table]]


@dataclass(frozen=True)
class BatchItem:
    """One unit of batch work: a question over a table (optional top-``k``).

    ``deadline`` is an absolute ``time.monotonic()`` instant (not a
    duration): the serving layer computes it once at enqueue from the
    request's ``deadline_ms`` so queue wait, dispatch and worker time
    all draw from the same budget.  ``None`` means wait forever.  Only
    the persistent pools honour it (a unit past its deadline resolves to
    :class:`~repro.perf.pool.DeadlineExceeded` in its result slot); the
    per-call backends ignore it.
    """

    question: str
    table: Table
    k: Optional[int] = None
    deadline: Optional[float] = None


@dataclass
class BatchParseResult:
    """One parsed question with its position and wall-clock cost."""

    index: int
    question: str
    table: Table
    parse: ParseOutput
    seconds: float

    @property
    def num_candidates(self) -> int:
        return len(self.parse.candidates)


@dataclass
class BatchReport:
    """Everything a caller needs from one batch run.

    ``results`` is index-aligned with the input items regardless of the
    pool size or completion order.  ``total_seconds`` is the wall-clock
    time of the whole batch (not the sum of per-item times, which overlap
    under concurrency).
    """

    results: List[BatchParseResult] = field(default_factory=list)
    total_seconds: float = 0.0
    workers: int = 1
    backend: str = "thread"

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    @property
    def per_question_seconds(self) -> List[float]:
        return [result.seconds for result in self.results]

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / len(self.results) if self.results else 0.0

    @property
    def throughput(self) -> float:
        """Questions per second of wall-clock time."""
        return len(self.results) / self.total_seconds if self.total_seconds > 0 else 0.0

    def parses(self) -> List[ParseOutput]:
        return [result.parse for result in self.results]


class BatchParser:
    """Parses many (question, table) pairs through one shared parser.

    Parameters
    ----------
    parser:
        The :class:`SemanticParser` to drive.  All of its caches
        (lexicons, grammars, memoized execution, candidate lists) are
        shared across the pool, so a batch over related questions warms
        the caches for every later question — including questions asked
        after the batch, which is what the prefetch hooks in
        :mod:`repro.interface` exploit.
    max_workers:
        Pool size.  ``1`` runs inline with no pool at all, which is the
        reference behaviour the concurrency tests compare against.
    backend:
        ``"thread"`` (shared caches, GIL-bound) or ``"process"`` (true
        parallelism; see :mod:`repro.perf.procpool`).
    pool:
        A persistent :class:`~repro.perf.pool.WorkerPool` to run batches
        on instead of the per-call executors above.  The pool survives
        between ``parse_all`` calls (warm workers, incremental table
        shipping, shard pinning — see :mod:`repro.perf.pool`); its
        backend and worker count override ``backend``/``max_workers``.
        Results stay bit-identical either way.
    """

    def __init__(
        self,
        parser: Optional[SemanticParser] = None,
        max_workers: int = 4,
        backend: str = "thread",
        pool: Optional["WorkerPool"] = None,
    ) -> None:
        if pool is not None:
            backend = pool.backend
            max_workers = pool.workers
        if max_workers < 1:
            raise ValueError(f"BatchParser needs max_workers >= 1, got {max_workers}")
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
        self.parser = parser or SemanticParser()
        self.max_workers = max_workers
        self.backend = backend
        self.pool = pool

    # -- public API -----------------------------------------------------------
    def parse_all(
        self, items: Iterable[BatchInput], k: Optional[int] = None
    ) -> BatchReport:
        """Parse every item, returning an index-aligned timed report.

        ``k`` is a default top-``k`` applied to plain ``(question, table)``
        tuples; a :class:`BatchItem` with its own ``k`` wins.
        """
        normalized = [self._normalize(item, k) for item in items]
        started = time.perf_counter()
        if self.pool is not None:
            results = [
                BatchParseResult(
                    index=i,
                    question=item.question,
                    table=item.table,
                    parse=parse,
                    seconds=seconds,
                )
                for i, (item, (parse, seconds)) in enumerate(
                    zip(normalized, self.pool.parse_all(normalized))
                )
            ]
        elif self.max_workers == 1 or len(normalized) <= 1:
            results = [self._parse_one(i, item) for i, item in enumerate(normalized)]
        elif self.backend == "process":
            from .procpool import ProcessPoolBackend  # lazy: fork cost only when used

            pool_results = ProcessPoolBackend(
                self.parser, max_workers=self.max_workers
            ).parse_all(normalized)
            results = [
                BatchParseResult(
                    index=i,
                    question=item.question,
                    table=item.table,
                    parse=parse,
                    seconds=seconds,
                )
                for i, (item, (parse, seconds)) in enumerate(zip(normalized, pool_results))
            ]
        else:
            with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                results = list(
                    pool.map(self._parse_one, range(len(normalized)), normalized)
                )
        total = time.perf_counter() - started
        return BatchReport(
            results=results,
            total_seconds=total,
            workers=self.max_workers,
            backend=self.backend,
        )

    def prewarm(self, items: Iterable[BatchInput], k: Optional[int] = None) -> BatchReport:
        """Alias of :meth:`parse_all` named for its cache-warming side effect."""
        return self.parse_all(items, k=k)

    # -- internals ------------------------------------------------------------
    @staticmethod
    def _normalize(item: BatchInput, k: Optional[int]) -> BatchItem:
        if isinstance(item, BatchItem):
            return item
        question, table = item
        return BatchItem(question=question, table=table, k=k)

    def _parse_one(self, index: int, item: BatchItem) -> BatchParseResult:
        started = time.perf_counter()
        parse = self.parser.parse(item.question, item.table, k=item.k)
        elapsed = time.perf_counter() - started
        return BatchParseResult(
            index=index,
            question=item.question,
            table=item.table,
            parse=parse,
            seconds=elapsed,
        )
