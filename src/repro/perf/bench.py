"""The parse-latency bench harness: sequential vs memoized vs batched.

This is the measurement side of the batching/caching subsystem.  It runs
the same question workload through three parser configurations:

* ``sequential`` — the seed hot path: plain :class:`Executor`, no
  sub-query memoization, no candidate-list cache (per-table lexicons and
  grammars are still built once, as the seed did);
* ``memoized``  — content-addressed caching on (shared execution cache +
  per-question candidate cache), still a sequential loop;
* ``batched``   — same caches driven through a
  :class:`~repro.perf.batch.BatchParser` thread pool.

and reports wall-clock totals, per-question timings and cache statistics
in a JSON-able payload.  ``benchmarks/test_perf_batch_parsing.py`` runs
the harness on the bench corpus and writes the payload to
``BENCH_parse.json`` so future PRs have a trajectory to beat; the
``repro bench-parse`` CLI sub-command does the same on demand.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..parser.candidates import ParserConfig, SemanticParser
from ..parser.model import LogLinearModel
from ..tables.table import Table
from .batch import BatchParser

#: The three modes of the harness, in reporting order.
BENCH_MODES = ("sequential", "memoized", "batched")


@dataclass
class ModeTiming:
    """Timing of one harness mode over the whole workload."""

    mode: str
    total_seconds: float
    per_question_seconds: List[float] = field(default_factory=list)
    candidates: int = 0
    cache_stats: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def questions(self) -> int:
        return len(self.per_question_seconds)

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.questions if self.questions else 0.0


@dataclass
class ParseBenchReport:
    """The harness output: one :class:`ModeTiming` per mode, plus metadata."""

    modes: Dict[str, ModeTiming] = field(default_factory=dict)
    questions: int = 0
    repeats: int = 1
    workers: int = 1

    def speedup(self, mode: str, baseline: str = "sequential") -> float:
        """Wall-clock speedup of ``mode`` over ``baseline`` (>1 is faster)."""
        base = self.modes[baseline].total_seconds
        other = self.modes[mode].total_seconds
        return base / other if other > 0 else float("inf")

    def to_payload(self) -> Dict[str, object]:
        """A JSON-able dict (the schema of the ``BENCH_parse.json`` artifact)."""
        return {
            "schema": "repro-bench-parse-v1",
            "questions": self.questions,
            "repeats": self.repeats,
            "workers": self.workers,
            "modes": {
                name: {
                    "total_seconds": timing.total_seconds,
                    "mean_seconds": timing.mean_seconds,
                    "per_question_seconds": timing.per_question_seconds,
                    "candidates": timing.candidates,
                    "cache_stats": timing.cache_stats,
                }
                for name, timing in self.modes.items()
            },
            "speedups": {
                name: self.speedup(name)
                for name in self.modes
                if name != "sequential" and "sequential" in self.modes
            },
        }

    def rows(self) -> List[List[str]]:
        """Console rows (mode, total, mean, speedup) for the CLI / benches."""
        rows = []
        for name in BENCH_MODES:
            timing = self.modes.get(name)
            if timing is None:
                continue
            speedup = self.speedup(name) if "sequential" in self.modes else 1.0
            rows.append(
                [
                    name,
                    f"{timing.total_seconds:.3f}s",
                    f"{timing.mean_seconds * 1000:.1f}ms",
                    f"{speedup:.2f}x",
                ]
            )
        return rows


def sequential_parser_config() -> ParserConfig:
    """The seed-equivalent configuration: no memoization, no candidate cache."""
    return ParserConfig(memoize_execution=False, cache_candidates=False)


def run_parse_bench(
    pairs: Sequence[Tuple[str, Table]],
    model: Optional[LogLinearModel] = None,
    repeats: int = 2,
    workers: int = 4,
    k: Optional[int] = None,
) -> ParseBenchReport:
    """Run the three-mode harness over a ``(question, table)`` workload.

    ``repeats`` replays the workload to model repeated deployment traffic
    (the regime Table 7 measures): the first pass is cold for every mode,
    later passes expose the warm-cache behaviour the caching modes exist
    for.  Every mode parses exactly ``len(pairs) * repeats`` questions on
    its own fresh parser, sharing only the (read-only) ``model`` weights.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    workload: List[Tuple[str, Table]] = [pair for _ in range(repeats) for pair in pairs]
    report = ParseBenchReport(
        questions=len(workload), repeats=repeats, workers=workers
    )

    # -- sequential (seed path) ---------------------------------------------
    parser = SemanticParser(model=model, config=sequential_parser_config())
    report.modes["sequential"] = _run_sequential("sequential", parser, workload, k)

    # -- memoized (content-addressed caches, sequential loop) ---------------
    parser = SemanticParser(model=model)
    report.modes["memoized"] = _run_sequential("memoized", parser, workload, k)

    # -- batched (same caches + thread pool) --------------------------------
    parser = SemanticParser(model=model)
    batch = BatchParser(parser, max_workers=workers)
    batch_report = batch.parse_all(workload, k=k)
    report.modes["batched"] = ModeTiming(
        mode="batched",
        total_seconds=batch_report.total_seconds,
        per_question_seconds=batch_report.per_question_seconds,
        candidates=sum(result.num_candidates for result in batch_report),
        cache_stats=parser.cache_stats(),
    )
    return report


def _run_sequential(
    mode: str,
    parser: SemanticParser,
    workload: Sequence[Tuple[str, Table]],
    k: Optional[int],
) -> ModeTiming:
    per_question: List[float] = []
    candidates = 0
    started = time.perf_counter()
    for question, table in workload:
        t0 = time.perf_counter()
        parse = parser.parse(question, table, k=k)
        per_question.append(time.perf_counter() - t0)
        candidates += len(parse.candidates)
    total = time.perf_counter() - started
    return ModeTiming(
        mode=mode,
        total_seconds=total,
        per_question_seconds=per_question,
        candidates=candidates,
        cache_stats=parser.cache_stats(),
    )


def bench_pairs_from_dataset(
    num_tables: int = 4,
    questions_per_table: int = 4,
    seed: int = 2019,
    paraphrase_rate: float = 0.5,
) -> List[Tuple[str, Table]]:
    """A small synthetic ``(question, table)`` workload for the harness."""
    from ..dataset.dataset import DatasetConfig, build_dataset

    config = DatasetConfig(
        num_tables=num_tables,
        questions_per_table=questions_per_table,
        seed=seed,
        paraphrase_rate=paraphrase_rate,
    )
    dataset = build_dataset(config)
    return [(example.question, example.table) for example in dataset.examples]
