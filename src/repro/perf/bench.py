"""The parse-latency bench harness: five modes from seed scans to processes.

This is the measurement side of the caching/indexing/parallelism
subsystem.  It runs the same question workload through five parser
configurations:

* ``sequential`` — the seed hot path: plain row-scan :class:`Executor`,
  no sub-query memoization, no candidate-list cache (per-table lexicons
  and grammars are still built once, as the seed did);
* ``memoized``  — content-addressed caching (shared execution cache +
  per-question candidate cache), still row scans, sequential loop;
* ``indexed``   — the same caches with cache misses answered from the
  content-addressed :class:`~repro.tables.index.TableIndex` (hash and
  bisect lookups instead of scans), sequential loop;
* ``batched``   — the indexed configuration driven through a
  :class:`~repro.perf.batch.BatchParser` thread pool (GIL-bound);
* ``process``   — the same through the process backend
  (:mod:`repro.perf.procpool`): deduplicated work units, true
  parallelism.

and reports wall-clock totals, per-question timings and cache statistics
in a JSON-able payload.  ``benchmarks/test_perf_batch_parsing.py`` runs
the harness on the bench corpus and writes the payload to
``BENCH_parse.json`` so future PRs have a trajectory to beat; the
``repro bench-parse`` CLI sub-command does the same on demand.

Every mode starts cold: the process-wide index registry is cleared
before each mode, and the optional disk store is partitioned per mode
(``<dir>/<mode>``) — within one harness run no mode inherits another's
work, while a *second* run over the same ``disk_cache_dir`` measures the
warm-start regime.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..parser.candidates import ParserConfig, SemanticParser
from ..parser.features import clear_token_caches
from ..parser.model import LogLinearModel
from ..tables.index import clear_index_cache
from ..tables.schema import clear_schema_cache
from ..tables.table import Table
from .batch import BatchParser

#: The modes of the harness, in reporting order.
BENCH_MODES = ("sequential", "memoized", "indexed", "batched", "process")

#: Environment variable scaling bench workloads (1.0 = full size; CI smoke
#: runs use 0.1 to exercise every code path at a fraction of the cost).
BENCH_SCALE_ENV = "REPRO_BENCH_SCALE"


def bench_scale(default: float = 1.0) -> float:
    """The workload scale factor from ``REPRO_BENCH_SCALE`` (>= 0)."""
    try:
        return max(0.0, float(os.environ.get(BENCH_SCALE_ENV, default)))
    except ValueError:
        return default


def quantize_seconds(value: float) -> float:
    """Wall-clock seconds rounded for the committed bench artifacts (1 ms).

    Bench JSON is committed to the repository as a perf trajectory; raw
    ``perf_counter`` floats (17 significant digits) made every re-run a
    full-file diff even when nothing structural changed.  One-millisecond
    resolution keeps the numbers meaningful while letting unchanged-
    structure re-runs diff in a handful of lines.
    """
    return round(value, 3)


def timing_summary(per_question_seconds: Sequence[float]) -> Dict[str, float]:
    """Min/median/max of a per-question latency series, in rounded ms.

    The artifact schema stores this summary instead of the raw series:
    the full list was hundreds of lines of noise per mode (the source of
    the 500-line artifact diffs), while min/p50/max is what the
    trajectory comparisons actually read.
    """
    if not per_question_seconds:
        return {"min_ms": 0.0, "p50_ms": 0.0, "max_ms": 0.0}
    ordered = sorted(per_question_seconds)
    return {
        "min_ms": round(ordered[0] * 1000, 1),
        "p50_ms": round(ordered[len(ordered) // 2] * 1000, 1),
        "max_ms": round(ordered[-1] * 1000, 1),
    }


@dataclass
class ModeTiming:
    """Timing of one harness mode over the whole workload."""

    mode: str
    total_seconds: float
    per_question_seconds: List[float] = field(default_factory=list)
    candidates: int = 0
    cache_stats: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def questions(self) -> int:
        return len(self.per_question_seconds)

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.questions if self.questions else 0.0


@dataclass
class ParseBenchReport:
    """The harness output: one :class:`ModeTiming` per mode, plus metadata."""

    modes: Dict[str, ModeTiming] = field(default_factory=dict)
    questions: int = 0
    repeats: int = 1
    workers: int = 1

    def speedup(self, mode: str, baseline: str = "sequential") -> float:
        """Wall-clock speedup of ``mode`` over ``baseline`` (>1 is faster)."""
        base = self.modes[baseline].total_seconds
        other = self.modes[mode].total_seconds
        return base / other if other > 0 else float("inf")

    def to_payload(self) -> Dict[str, object]:
        """A JSON-able dict (the schema of the ``BENCH_parse.json`` artifact).

        v3 segregates what changes between runs from what should not:
        ``modes`` holds the structural facts (question/candidate counts,
        cache counters — identical across re-runs of the same workload),
        while everything wall-clock-derived lives under ``timings``,
        quantized (1 ms / 0.1 ms / 0.01x) and with per-question series
        summarized to min/p50/max.  Re-running an unchanged workload now
        diffs a few timing lines instead of rewriting the artifact.
        """
        return {
            "schema": "repro-bench-parse-v3",
            "questions": self.questions,
            "repeats": self.repeats,
            "workers": self.workers,
            "modes": {
                name: {
                    "questions": timing.questions,
                    "candidates": timing.candidates,
                    "cache_stats": timing.cache_stats,
                }
                for name, timing in self.modes.items()
            },
            "timings": {
                "modes": {
                    name: {
                        "total_seconds": quantize_seconds(timing.total_seconds),
                        "mean_ms": round(timing.mean_seconds * 1000, 1),
                        "per_question": timing_summary(timing.per_question_seconds),
                    }
                    for name, timing in self.modes.items()
                },
                "speedups": {
                    name: round(self.speedup(name), 2)
                    for name in self.modes
                    if name != "sequential" and "sequential" in self.modes
                },
            },
        }

    def rows(self) -> List[List[str]]:
        """Console rows (mode, total, mean, speedup) for the CLI / benches."""
        rows = []
        for name in BENCH_MODES:
            timing = self.modes.get(name)
            if timing is None:
                continue
            speedup = self.speedup(name) if "sequential" in self.modes else 1.0
            rows.append(
                [
                    name,
                    f"{timing.total_seconds:.3f}s",
                    f"{timing.mean_seconds * 1000:.1f}ms",
                    f"{speedup:.2f}x",
                ]
            )
        return rows


def sequential_parser_config() -> ParserConfig:
    """The seed-equivalent configuration: scans, no memoization, no caches."""
    return ParserConfig(
        memoize_execution=False, cache_candidates=False, index_tables=False
    )


def memoized_parser_config() -> ParserConfig:
    """The PR 1 configuration: content-addressed caches over row scans."""
    return ParserConfig(index_tables=False)


def _reset_shared_caches() -> None:
    """Start a harness mode cold: clear every *process-wide* cache.

    Per-parser caches are fresh anyway (each mode builds its own parser);
    the index registry, the schema profile cache and the memoised token
    sets are module-level and would otherwise leak one mode's warm-up
    into the next, biasing the asserted speedups by run order.
    """
    clear_index_cache()
    clear_schema_cache()
    clear_token_caches()


def _mode_config(mode: str, disk_cache_dir: Optional[str]) -> ParserConfig:
    """The parser configuration of one harness mode (see module docstring)."""
    if mode == "sequential":
        return sequential_parser_config()
    if mode == "memoized":
        return memoized_parser_config()
    config = ParserConfig()  # indexed / batched / process: everything on
    if disk_cache_dir:
        config = ParserConfig(disk_cache_dir=os.path.join(disk_cache_dir, mode))
    return config


def run_parse_bench(
    pairs: Sequence[Tuple[str, Table]],
    model: Optional[LogLinearModel] = None,
    repeats: int = 2,
    workers: int = 4,
    k: Optional[int] = None,
    backends: Sequence[str] = ("thread", "process"),
    disk_cache_dir: Optional[str] = None,
) -> ParseBenchReport:
    """Run the five-mode harness over a ``(question, table)`` workload.

    ``repeats`` replays the workload to model repeated deployment traffic
    (the regime Table 7 measures): the first pass is cold for every mode,
    later passes expose the warm-cache behaviour the caching modes exist
    for.  Every mode parses exactly ``len(pairs) * repeats`` questions on
    its own fresh parser, sharing only the (read-only) ``model`` weights.

    ``backends`` selects the pooled modes: ``"thread"`` runs ``batched``,
    ``"process"`` runs ``process``.  ``disk_cache_dir`` enables the
    on-disk store for the indexed/batched/process modes (one
    sub-directory per mode; pass the same directory twice to measure a
    warm start).
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    workload: List[Tuple[str, Table]] = [pair for _ in range(repeats) for pair in pairs]
    report = ParseBenchReport(
        questions=len(workload), repeats=repeats, workers=workers
    )

    for mode in ("sequential", "memoized", "indexed"):
        _reset_shared_caches()
        parser = SemanticParser(model=model, config=_mode_config(mode, disk_cache_dir))
        report.modes[mode] = _run_sequential(mode, parser, workload, k)

    # The process mode forks; running it before the thread mode keeps the
    # parent heap it must copy-on-write as small as possible.
    pooled = [("process", "process"), ("batched", "thread")]
    for mode, backend in pooled:
        if backend not in backends:
            continue
        _reset_shared_caches()
        parser = SemanticParser(model=model, config=_mode_config(mode, disk_cache_dir))
        batch = BatchParser(parser, max_workers=workers, backend=backend)
        batch_report = batch.parse_all(workload, k=k)
        # Note: for the process backend these are the *driver's* cache
        # stats (prewarm only) — worker caches are process-private by
        # design and die with the pool, so their hit rates are not
        # observable here.  The thread mode's stats cover all parsing.
        report.modes[mode] = ModeTiming(
            mode=mode,
            total_seconds=batch_report.total_seconds,
            per_question_seconds=batch_report.per_question_seconds,
            candidates=sum(result.num_candidates for result in batch_report),
            cache_stats=parser.cache_stats(),
        )
    return report


def _run_sequential(
    mode: str,
    parser: SemanticParser,
    workload: Sequence[Tuple[str, Table]],
    k: Optional[int],
) -> ModeTiming:
    per_question: List[float] = []
    candidates = 0
    started = time.perf_counter()
    for question, table in workload:
        t0 = time.perf_counter()
        parse = parser.parse(question, table, k=k)
        per_question.append(time.perf_counter() - t0)
        candidates += len(parse.candidates)
    total = time.perf_counter() - started
    return ModeTiming(
        mode=mode,
        total_seconds=total,
        per_question_seconds=per_question,
        candidates=candidates,
        cache_stats=parser.cache_stats(),
    )


def bench_pairs_from_dataset(
    num_tables: int = 4,
    questions_per_table: int = 4,
    seed: int = 2019,
    paraphrase_rate: float = 0.5,
    scale: Optional[float] = None,
) -> List[Tuple[str, Table]]:
    """A small synthetic ``(question, table)`` workload for the harness.

    ``scale`` multiplies both corpus dimensions (floored at 2), defaulting
    to :func:`bench_scale` — so ``REPRO_BENCH_SCALE=0.1`` shrinks the CI
    smoke workload without touching callers.
    """
    from ..dataset.dataset import DatasetConfig, build_dataset

    factor = bench_scale() if scale is None else scale
    config = DatasetConfig(
        num_tables=max(2, int(round(num_tables * factor))),
        questions_per_table=max(2, int(round(questions_per_table * factor))),
        seed=seed,
        paraphrase_rate=paraphrase_rate,
    )
    dataset = build_dataset(config)
    return [(example.question, example.table) for example in dataset.examples]
