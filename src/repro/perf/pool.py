"""Persistent warm worker pools: the serving hot path's engine room.

The per-batch backends (:class:`~repro.perf.batch.BatchParser`'s ad-hoc
``ThreadPoolExecutor``, :class:`~repro.perf.procpool.ProcessPoolBackend`'s
fork-per-call pool) pay their whole setup cost — executor construction,
worker forks, table shipment — on *every* dispatcher batch.  For the
interactive serving regime (many small batches over a long-lived
catalog) that churn ate the concurrency win: the serving bench measured
async throughput *below* sequential.

This module provides the long-lived alternative: a :class:`WorkerPool`
created once (by :class:`~repro.api.engine.ReproEngine` /
:class:`~repro.serving.server.AsyncServer`) and reused across every
batch until :meth:`~WorkerPool.close`.

Two flavours behind one interface:

* :class:`ThreadWorkerPool` — one persistent ``ThreadPoolExecutor``
  driving the shared :class:`~repro.parser.candidates.SemanticParser`.
  No per-batch executor construction; every cache stays shared.
* :class:`ProcessWorkerPool` — persistent worker *processes*, each
  holding a fingerprint-addressed table registry that survives between
  batches.  The driver ships only fingerprints a worker has never seen
  (incremental registry updates — never the whole corpus re-pickled per
  batch), re-syncs model weights only when they changed, and pins shards
  to workers with a stable digest hash so a shard's questions land on
  the worker whose lexicon/grammar/index are already hot.

Correctness contract (the same one every batch backend honours, locked
in by ``tests/test_pool.py``): ``parse_all`` results are index-aligned
with the input items and **bit-identical** to a sequential loop over the
same parser configuration — pinning, persistence and fault recovery
change scheduling and locality, never answers.

Shard pinning and the spill valve
---------------------------------
``pin(digest) = int(digest[:8], 16) % workers`` is stable across
batches, processes and runs: shard S always lands on worker
``pin(S)``, so repeat traffic for S finds warm worker-local caches.
A pure pin would serialise a batch over few shards (one hot worker,
the rest idle), so assignment *spills* deterministically: while a
worker is idle and another holds more than one unit, half of the
busiest worker's largest shard group moves to the idle worker (shipping
that table there, once ever).  The spill pattern is a pure function of
the batch composition, so repeated workloads spill to the same workers
and stay warm there too.  ``ProcessWorkerPool(spill=False)`` disables
the valve for strict-pinning tests.

Fault tolerance (supervision, deadlines, the degradation ladder)
----------------------------------------------------------------
A forked worker can die (OOM-kill, segfault, an injected
``worker.crash_before_batch`` fault) or hang.  The process flavour
supervises its workers instead of trusting them:

* workers stream **per-unit replies** (``("unit", …)`` /
  ``("unit_error", …)`` then ``("done",)``), so a death or hang
  mid-batch loses only the unanswered units, never the whole group;
* the driver collects with :func:`multiprocessing.connection.wait`
  under a timeout derived from unit deadlines, the optional
  ``call_timeout`` watchdog and a liveness probe interval — pipe EOF,
  a failed ``is_alive()`` probe or an expired watchdog all mark the
  worker dead;
* a dead worker is **respawned** and the tables it held are re-shipped
  (``("ship", blob)``), its unanswered units are **retried** on a
  rotated assignment (``(pin + round) % workers`` — a survivor when
  there is more than one worker), and a unit that outlives every retry
  round is parsed **inline** in the driver;
* after :attr:`~ProcessWorkerPool.max_respawn_failures` *consecutive*
  respawn failures the pool **downgrades** to a
  :class:`ThreadWorkerPool` fallback — logged, visible in
  :meth:`~WorkerPool.stats` (``downgraded``/``downgrades``) and
  bit-identical, because parsing is deterministic for a fixed
  parser configuration regardless of backend.

Deadlines ride on :class:`~repro.perf.batch.BatchItem.deadline`
(an absolute ``time.monotonic()`` instant, set by the serving layer
from the request's ``deadline_ms``).  An expired unit resolves to a
:class:`DeadlineExceeded` *value* in the result slot — an answer
already on the wire beats the timeout; the rest of the batch completes
normally.  Worker *faults* are injected driver-side: the driver asks
:mod:`repro.faults` at dispatch time and stamps the fault onto the work
message, so hit counts stay global across respawns and a respawned
fork never re-inherits a one-shot crash.
"""

from __future__ import annotations

import dataclasses
import gc
import logging
import multiprocessing
import os
import pickle
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from .. import faults
from ..parser.candidates import ParseOutput, ParserConfig, SemanticParser
from ..parser.model import LogLinearModel
from ..tables.fingerprint import LRUCache
from ..tables.table import Table
from . import procpool
from .procpool import WorkUnit, _available_cpus, _refresh_inherited_locks

_log = logging.getLogger(__name__)


class PoolError(RuntimeError):
    """Base of per-unit pool failures.

    Pool failures are *values*, not raised exceptions: ``parse_all``
    stays index-aligned by putting a ``PoolError`` instance in the
    result slot of the unit that failed while the rest of the batch
    completes.  :func:`repro.api.errors.classify_exception` maps these
    onto the wire taxonomy (``TIMEOUT`` / ``INTERNAL``).
    """


class DeadlineExceeded(PoolError):
    """The unit's deadline expired before a worker produced an answer."""


class WorkerFailed(PoolError):
    """A worker died (or errored) and every retry rung was exhausted."""


#: What ``WorkerPool.parse_all`` returns per item: the parse (or the
#: coded :class:`PoolError` that replaced it) plus the worker-measured
#: wall-clock seconds it took.
PoolResult = Tuple[Union[ParseOutput, PoolError], float]


def create_pool(
    backend: str,
    parser: SemanticParser,
    max_workers: int = 4,
    call_timeout: Optional[float] = None,
) -> "WorkerPool":
    """The one construction site: a persistent pool for ``backend``."""
    if backend == "process":
        return ProcessWorkerPool(
            parser, max_workers=max_workers, call_timeout=call_timeout
        )
    if backend == "thread":
        return ThreadWorkerPool(parser, max_workers=max_workers)
    raise ValueError(f"unknown pool backend {backend!r}")


class WorkerPool:
    """The persistent-pool interface both flavours implement.

    A pool is created once, survives any number of :meth:`parse_all`
    batches, and is torn down with :meth:`close` (idempotent, safe to
    call concurrently; also a context manager).  ``parse_all`` takes
    :class:`~repro.perf.batch.BatchItem` instances and returns
    index-aligned ``(parse, seconds)`` pairs.
    """

    backend: str = "?"

    def __init__(self, parser: SemanticParser, max_workers: int = 4) -> None:
        if max_workers < 1:
            raise ValueError(f"{type(self).__name__} needs max_workers >= 1")
        self.parser = parser
        self.max_workers = max_workers
        self.batches = 0
        self.units = 0
        #: Units that resolved to :class:`DeadlineExceeded`.
        self.timeouts = 0
        #: Superseded table digests retired from this pool's registries.
        self.retired = 0
        # Warm explanation registry, shared by both flavours and used by
        # :meth:`NLInterface.ask_many` on the batch path: explanations
        # are a pure function of (table content, query), so entries are
        # keyed ``(fingerprint, query sexpr)`` and survive shard
        # eviction — a warm batch never rebuilds an evicted
        # ``ExplanationGenerator`` just to re-derive identical output.
        self.explanations = LRUCache(
            maxsize=parser.config.candidate_cache_size * 8
        )

    @property
    def workers(self) -> int:
        return self.max_workers

    def parse_all(self, items: Sequence) -> List[PoolResult]:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    def retire(self, digests: Sequence[str]) -> None:
        """Forget superseded table versions (the catalog retirement hook).

        Drops every registry/cache entry keyed by the given content
        digests so live-corpus churn cannot accumulate dead snapshots in
        long-lived pools.  Entries of other digests are untouched; a
        digest never shipped is a no-op.
        """
        targets = set(digests)
        if not targets:
            return
        for key in list(self.explanations.keys()):
            if key[0].digest in targets:
                self.explanations.pop(key)
        self.retired += len(targets)

    def stats(self) -> Dict[str, object]:
        return {
            "backend": self.backend,
            "workers": self.workers,
            "batches": self.batches,
            "units": self.units,
            "timeouts": self.timeouts,
            "retired": self.retired,
        }

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _deadline_expired(deadline: Optional[float]) -> bool:
    return deadline is not None and time.monotonic() >= deadline


class ThreadWorkerPool(WorkerPool):
    """A persistent thread pool over one shared parser.

    The executor is built lazily on the first multi-item batch and then
    reused for every later batch — the per-batch
    ``ThreadPoolExecutor`` construction/teardown of the old path is the
    churn this class exists to remove.  All parser caches are shared
    (the thread backend's defining property), so answers are trivially
    bit-identical to the sequential loop.

    Like the process flavour's worker-side table registries, the pool
    keeps its own fingerprint-addressed **warm registry** of generated
    candidate lists, immune to the catalog's shard eviction: eviction
    drops the *parser's* per-table caches (driver policy — bounded hot
    set), but the pool re-seeds the parser's own candidate cache from
    the registry before each parse, so an evicted-and-rehydrated shard
    skips candidate generation entirely.  Entries are the parser's own
    content-addressed cache values — generation is deterministic and
    weight-independent (ranking re-runs with the live weights every
    parse), so re-seeding cannot change any answer.
    """

    backend = "thread"

    def __init__(self, parser: SemanticParser, max_workers: int = 4) -> None:
        super().__init__(parser, max_workers=max_workers)
        self._executor: Optional[ThreadPoolExecutor] = None
        self._closed = False
        self._close_lock = threading.Lock()
        # Same content-addressed keys and bound as the parser's own
        # candidate cache (reaching into parser internals deliberately —
        # this is persistence plumbing, not API).
        self._registry = LRUCache(maxsize=parser.config.candidate_cache_size)
        # Fully-ranked parses, valid only for the weights snapshot below:
        # the thread analogue of the process workers' per-batch weight
        # resync.  Keyed (fingerprint, question, k); flushed whenever the
        # model weights change, so online training invalidates cleanly.
        self._ranked = LRUCache(maxsize=parser.config.candidate_cache_size)
        self._ranked_weights: Optional[Dict[str, float]] = None

    @property
    def workers(self) -> int:
        # Parsing is pure Python (GIL-bound): threads beyond the cores
        # this process may use cannot overlap compute, they only add
        # switch churn — cap like the process flavour does.
        return min(self.max_workers, _available_cpus()) or 1

    def registry_size(self) -> int:
        """Entries held in the eviction-immune warm registry."""
        return len(self._registry)

    def _parse_one(self, item) -> PoolResult:
        deadline = getattr(item, "deadline", None)
        if _deadline_expired(deadline):
            self.timeouts += 1
            return (
                DeadlineExceeded(
                    f"deadline expired before parsing {item.question!r}"
                ),
                0.0,
            )
        parser = self.parser
        warm = parser.config.cache_candidates
        key = (item.table.fingerprint, item.question)
        ranked_key = (item.table.fingerprint, item.question, item.k)
        started = time.perf_counter()
        if warm:
            ranked = self._ranked.get(ranked_key)
            if ranked is not None:
                # Ranking is deterministic for fixed weights (checked per
                # batch in parse_all), so the memoized parse is value-
                # identical to re-ranking — only the wall-clock differs.
                return (
                    dataclasses.replace(ranked, table=item.table),
                    time.perf_counter() - started,
                )
            if parser._candidate_cache.get(key) is None:
                entry = self._registry.get(key)
                if entry is not None:
                    parser._candidate_cache.put(key, entry)
        parse = parser.parse(item.question, item.table, k=item.k)
        elapsed = time.perf_counter() - started
        if warm:
            entry = parser._candidate_cache.get(key)
            if entry is not None:
                self._registry.put(key, entry)
            self._ranked.put(ranked_key, parse)
        return parse, elapsed

    def parse_all(self, items: Sequence) -> List[PoolResult]:
        if self._closed:
            raise RuntimeError("pool is closed")
        self.batches += 1
        self.units += len(items)
        weights = self.parser.model.weights
        if self._ranked_weights != weights:
            # Same contract as the process workers' weight resync: new
            # weights flush every memoized ranking before any parse runs.
            self._ranked.clear()
            self._ranked_weights = dict(weights)
        if self.workers == 1 or len(items) <= 1:
            return [self._parse_one(item) for item in items]
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-pool"
            )
        return list(self._executor.map(self._parse_one, items))

    def close(self) -> None:
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        self._registry.clear()
        self._ranked.clear()
        self.explanations.clear()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def retire(self, digests: Sequence[str]) -> None:
        targets = set(digests)
        if not targets:
            return
        # Both caches key on (fingerprint, question[, k]); drop exactly
        # the superseded versions' entries and nothing else.
        for cache in (self._registry, self._ranked):
            for key in list(cache.keys()):
                if key[0].digest in targets:
                    cache.pop(key)
        super().retire(targets)

    def stats(self) -> Dict[str, object]:
        payload = super().stats()
        payload["registry"] = self.registry_size()
        payload["ranked"] = len(self._ranked)
        return payload


# ---------------------------------------------------------------------------
# the process flavour
# ---------------------------------------------------------------------------


def _pool_worker_main(conn, weights: Dict[str, float], config: ParserConfig) -> None:
    """The long-lived worker loop (runs in a child process).

    State that persists across batches: the fingerprint-addressed table
    registry and the worker's parser with all its per-table caches —
    exactly what the per-batch pool threw away each call.  The GC is
    frozen/disabled for the same copy-on-write reasons as
    :func:`repro.perf.procpool._init_worker`.

    Protocol (driver → worker): ``("parse", blob, weights, units,
    fault)``, ``("ship", blob)`` (registry re-ship after a respawn),
    ``("stop",)``.  Replies stream **per unit** — ``("unit", unit,
    parse, seconds)`` or ``("unit_error", unit, message)`` — followed by
    a terminal ``("done",)``, so the driver loses only unanswered units
    when a worker dies mid-batch.  ``fault`` is a driver-stamped
    injected fault (``None``, ``("crash",)`` or ``("hang", seconds)``)
    executed before the units — see :mod:`repro.faults`.
    """
    gc.freeze()
    gc.disable()
    parser = procpool._FORK_PARSER
    if parser is not None:
        _refresh_inherited_locks(parser)
    else:  # spawn start method: rebuild from the shipped weights/config
        model = LogLinearModel()
        model.weights = dict(weights)
        parser = SemanticParser(model=model, config=config)
    tables: Dict[str, Table] = {}
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        kind = message[0]
        if kind == "stop":
            break
        if kind == "ship":
            try:
                for table in pickle.loads(message[1]):
                    tables[table.fingerprint.digest] = table
            except Exception:  # pragma: no cover - corrupt re-ship
                pass
            continue
        if kind == "retire":
            # A superseded table version will never be asked again: drop
            # it from the registry *and* from the worker parser's
            # per-table caches, or every live-corpus edit leaks one
            # table per worker forever.
            for digest in message[1]:
                table = tables.pop(digest, None)
                if table is not None:
                    try:
                        parser.retire_table(table)
                    except Exception:  # pragma: no cover - best effort
                        pass
            continue
        if kind != "parse":  # pragma: no cover - protocol guard
            conn.send(("done",))
            continue
        _, tables_blob, new_weights, units, fault = message
        if fault is not None:
            if fault[0] == "crash":
                # Injected worker death: exit hard, no goodbye — the
                # driver must recover from the bare pipe EOF.
                os._exit(13)
            elif fault[0] == "hang":
                time.sleep(float(fault[1]))
        try:
            if tables_blob is not None:
                for table in pickle.loads(tables_blob):
                    tables[table.fingerprint.digest] = table
            if new_weights is not None:
                parser.model.weights = dict(new_weights)
        except Exception as error:  # the whole dispatch is unusable
            for unit in units:
                conn.send(("unit_error", unit, f"{type(error).__name__}: {error}"))
            conn.send(("done",))
            continue
        for unit in units:
            try:
                digest, question, k = unit
                table = tables[digest]
                started = time.perf_counter()
                parse = parser.parse(question, table, k=k)
                elapsed = time.perf_counter() - started
                # The driver re-attaches its own table object; candidates
                # only reference cells, never the table itself.
                parse.table = None
                conn.send(("unit", unit, parse, elapsed))
            except Exception as error:  # surface, don't kill the worker
                conn.send(("unit_error", unit, f"{type(error).__name__}: {error}"))
        conn.send(("done",))


@dataclass
class _Worker:
    """Driver-side handle of one persistent worker process."""

    process: multiprocessing.Process
    conn: object  # multiprocessing.connection.Connection
    shipped: set = field(default_factory=set)
    weights: Dict[str, float] = field(default_factory=dict)


@dataclass
class _Inflight:
    """One dispatched worker message awaiting its ``("done",)``."""

    index: int
    #: Outstanding units → absolute monotonic deadline (or ``None``).
    units: Dict[WorkUnit, Optional[float]]
    dispatched_at: float


class ProcessWorkerPool(WorkerPool):
    """Persistent worker processes with shard affinity and supervision.

    Workers fork lazily on the first batch (inheriting the driver's warm
    caches copy-on-write under the ``fork`` start method, guarded by the
    same :data:`~repro.perf.procpool._FORK_LOCK` the per-batch backend
    uses) and live until :meth:`close`.  Across batches each worker
    keeps its table registry and parser caches, the driver tracks what
    every worker already holds, and work routes by the stable pin hash —
    see the module docstring for the full contract, including the
    supervision / retry / downgrade ladder.

    ``parse_all`` is thread-safe: concurrent batches (e.g. a broadcast
    and a routed group interleaved by the serving dispatcher) serialise
    on a driver-side lock; each still fans out across all workers.
    """

    backend = "process"

    #: How long a worker may sit on one dispatched message before the
    #: supervisor declares it hung (``None`` disables the watchdog; unit
    #: deadlines still apply).
    call_timeout: Optional[float]
    #: Liveness probe cadence: the supervisor wakes at least this often
    #: to run ``is_alive()`` even when no deadline is near.
    probe_interval: float = 0.5
    #: Retry rounds for units orphaned by a dead/hung worker before the
    #: driver parses them inline.
    max_unit_retries: int = 2
    #: Consecutive respawn failures that trigger the thread downgrade.
    max_respawn_failures: int = 3

    def __init__(
        self,
        parser: SemanticParser,
        max_workers: int = 4,
        spill: bool = True,
        call_timeout: Optional[float] = None,
    ) -> None:
        super().__init__(parser, max_workers=max_workers)
        self.spill = spill
        self.call_timeout = call_timeout
        self.tables_shipped = 0
        self.last_shipped: List[str] = []
        #: Workers respawned after a death (supervision at work).
        self.respawns = 0
        #: Respawn attempts that themselves failed.
        self.respawn_failures = 0
        #: Units re-dispatched after their worker died or hung.
        self.retries = 0
        #: Units parsed inline in the driver (last rung of the ladder).
        self.inline_parses = 0
        #: Times the pool downgraded to the thread backend (0 or 1).
        self.downgrades = 0
        self._consecutive_respawn_failures = 0
        self._fallback: Optional[ThreadWorkerPool] = None
        self._workers: List[_Worker] = []
        #: Every table ever seen, so a respawned worker's registry can be
        #: re-shipped without waiting for the next natural batch.
        self._tables: Dict[str, Table] = {}
        self._lock = threading.Lock()
        self._close_lock = threading.Lock()
        self._closed = False

    @property
    def workers(self) -> int:
        # Like the per-batch backend: never more processes than cores.
        return min(self.max_workers, _available_cpus()) or 1

    def pin(self, digest: str) -> int:
        """The stable shard→worker hash (pure; same answer every run)."""
        return int(digest[:8], 16) % self.workers

    def pids(self) -> List[int]:
        """PIDs of the live workers (empty before the first batch)."""
        return [worker.process.pid for worker in self._workers]

    @property
    def downgraded(self) -> bool:
        """Whether the pool has fallen back to the thread backend."""
        return self._fallback is not None

    # -- lifecycle -------------------------------------------------------------
    def _spawn_worker(self) -> _Worker:
        """Fork one worker under the shared fork lock.

        ``_FORK_PARSER`` is module-global state: a concurrent per-batch
        ``ProcessPoolBackend`` fork must not see (or null) our parser
        mid-flight.
        """
        weights = self.parser.model.weights
        with procpool._FORK_LOCK:
            fork_start = multiprocessing.get_start_method() == "fork"
            if fork_start:
                procpool._FORK_PARSER = self.parser
            try:
                parent_conn, child_conn = multiprocessing.Pipe()
                process = multiprocessing.Process(
                    target=_pool_worker_main,
                    args=(child_conn, weights, self.parser.config),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                return _Worker(
                    process=process, conn=parent_conn, weights=dict(weights)
                )
            finally:
                if fork_start:
                    procpool._FORK_PARSER = None

    def _ensure_workers(self) -> None:
        if self._workers or self._fallback is not None:
            return
        for _ in range(self.workers):
            self._workers.append(self._spawn_worker())

    @staticmethod
    def _reap(worker: _Worker) -> None:
        """Take one worker down for good: stop → join → terminate → kill.

        Escalates so no call path can leave a zombie: a worker that
        ignores ``terminate()`` (blocked in uninterruptible state) gets
        ``kill()`` as the last resort.
        """
        try:
            worker.conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        worker.process.join(timeout=5)
        if worker.process.is_alive():
            worker.process.terminate()
            worker.process.join(timeout=5)
        if worker.process.is_alive():  # pragma: no cover - stuck worker
            worker.process.kill()
            worker.process.join(timeout=5)
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def _kill_worker(self, worker: _Worker) -> None:
        """Immediate teardown for a hung/dead worker (no polite stop)."""
        if worker.process.is_alive():
            worker.process.terminate()
            worker.process.join(timeout=2)
        if worker.process.is_alive():  # pragma: no cover - stuck worker
            worker.process.kill()
            worker.process.join(timeout=2)
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def close(self) -> None:
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        with self._lock:
            self.explanations.clear()
            if self._fallback is not None:
                self._fallback.close()
            for worker in self._workers:
                self._reap(worker)
            self._workers = []
            self._tables.clear()

    def retire(self, digests: Sequence[str]) -> None:
        targets = set(digests)
        if not targets:
            return
        with self._lock:
            if self._closed:
                return
            for digest in targets:
                self._tables.pop(digest, None)
            for worker in self._workers:
                held = sorted(targets & worker.shipped)
                if not held:
                    continue
                # Forget driver-side first: even if the send fails, the
                # respawn path re-ships from ``shipped & _tables``, and
                # neither holds these digests any more.
                worker.shipped.difference_update(held)
                try:
                    worker.conn.send(("retire", held))
                except (BrokenPipeError, OSError):
                    pass  # dead worker; supervision will reap it
            if self._fallback is not None:
                self._fallback.retire(targets)
        super().retire(targets)

    # -- supervision -----------------------------------------------------------
    def _stamp_fault(self) -> Optional[tuple]:
        """Evaluate worker failpoints driver-side for one dispatch.

        Stamping the fault onto the message (instead of letting the
        worker consult :mod:`repro.faults` itself) keeps hit counts
        global across the pool and means a respawned fork — which
        inherits the armed module state — does not re-fire a one-shot
        crash forever.
        """
        if faults.should_fire("worker.crash_before_batch"):
            return ("crash",)
        if faults.should_fire("worker.hang"):
            return (
                "hang",
                faults.param("worker.hang", faults.DEFAULT_HANG_SECONDS),
            )
        return None

    def _respawn(self, index: int) -> bool:
        """Replace the dead worker at ``index``; ``False`` means downgraded.

        Retries until a spawn succeeds or
        :attr:`max_respawn_failures` *consecutive* failures accumulate —
        at which point the pool downgrades to the thread backend and
        every process worker is gone.  The replacement worker gets the
        registries the dead one held re-shipped immediately, so pinned
        traffic stays warm.
        """
        dead = self._workers[index]
        held = set(dead.shipped)
        self._kill_worker(dead)
        while True:
            try:
                if faults.should_fire("pool.respawn_fail"):
                    raise RuntimeError(
                        "injected respawn failure (pool.respawn_fail)"
                    )
                worker = self._spawn_worker()
            except Exception as error:
                self.respawn_failures += 1
                self._consecutive_respawn_failures += 1
                _log.warning(
                    "pool worker respawn failed (%d consecutive): %s",
                    self._consecutive_respawn_failures,
                    error,
                )
                if (
                    self._consecutive_respawn_failures
                    >= self.max_respawn_failures
                ):
                    self._downgrade(
                        f"{self._consecutive_respawn_failures} consecutive "
                        f"respawn failures (last: {error})"
                    )
                    return False
                continue
            self._consecutive_respawn_failures = 0
            self.respawns += 1
            reship = [
                self._tables[digest]
                for digest in sorted(held)
                if digest in self._tables
            ]
            if reship:
                worker.conn.send(
                    ("ship", pickle.dumps(reship, protocol=pickle.HIGHEST_PROTOCOL))
                )
                worker.shipped.update(table.fingerprint.digest for table in reship)
            self._workers[index] = worker
            return True

    def _downgrade(self, reason: str) -> None:
        """Fall back to the thread backend (the ladder's second rung).

        Bit-identical by construction: parsing is a pure function of
        (parser config, weights, table, question), so the thread
        fallback returns exactly what the process workers would have.
        """
        _log.warning(
            "process pool downgrading to thread backend: %s", reason
        )
        self.downgrades += 1
        for worker in self._workers:
            self._kill_worker(worker)
        self._workers = []
        self._fallback = ThreadWorkerPool(
            self.parser, max_workers=self.max_workers
        )

    # -- scheduling ------------------------------------------------------------
    def _assign(
        self, groups: Dict[str, List[WorkUnit]], offset: int = 0
    ) -> Dict[int, Dict[str, List[WorkUnit]]]:
        """Pin each shard's units, then spill to idle workers.

        Deterministic: pinning is a pure hash, donors are picked by
        (load, lowest index), targets lowest-index-first, and a split
        moves the tail half of the donor's largest group.  ``offset``
        rotates the pin for retry rounds, so a unit orphaned by a dead
        worker lands on a survivor when the pool has more than one.
        """
        assignment: Dict[int, Dict[str, List[WorkUnit]]] = {}
        for digest, units in groups.items():
            index = (self.pin(digest) + offset) % self.workers
            assignment.setdefault(index, {}).setdefault(digest, []).extend(units)
        if not self.spill:
            return assignment

        def load(index: int) -> int:
            return sum(len(units) for units in assignment.get(index, {}).values())

        idle = [index for index in range(self.workers) if load(index) == 0]
        while idle:
            donors = [index for index in range(self.workers) if load(index) > 1]
            if not donors:
                break
            donor = max(donors, key=lambda index: (load(index), -index))
            donor_groups = assignment[donor]
            digest, units = max(
                donor_groups.items(), key=lambda pair: (len(pair[1]), pair[0])
            )
            target = idle.pop(0)
            if len(units) == 1:
                # All of the donor's groups are singletons: move one whole
                # group instead of splitting.
                moved = donor_groups.pop(digest)
            else:
                half = len(units) // 2
                moved = units[len(units) - half:]
                del units[len(units) - half:]
            assignment.setdefault(target, {}).setdefault(digest, []).extend(moved)
        return assignment

    # -- dispatch + collect ----------------------------------------------------
    def _dispatch(
        self,
        assignment: Dict[int, Dict[str, List[WorkUnit]]],
        deadlines: Dict[WorkUnit, Optional[float]],
    ) -> Dict[int, _Inflight]:
        """Ship registries + units to every assigned worker."""
        weights = self.parser.model.weights
        inflight: Dict[int, _Inflight] = {}
        for index, worker_groups in sorted(assignment.items()):
            worker = self._workers[index]
            units = [
                unit for _, units in sorted(worker_groups.items())
                for unit in units
            ]
            if not units:
                continue
            # Incremental registry update: only fingerprints this
            # worker has never held cross the pipe.
            new_digests = [
                digest
                for digest in sorted(worker_groups)
                if digest not in worker.shipped
            ]
            blob = (
                pickle.dumps(
                    [self._tables[digest] for digest in new_digests],
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
                if new_digests
                else None
            )
            new_weights = None if worker.weights == weights else dict(weights)
            fault = self._stamp_fault()
            try:
                worker.conn.send(("parse", blob, new_weights, units, fault))
            except (BrokenPipeError, OSError):
                # The worker died between batches: record the dispatch as
                # in flight with nothing sent — the collect loop's EOF
                # path respawns it and retries the units.
                inflight[index] = _Inflight(
                    index=index,
                    units={unit: deadlines[unit] for unit in units},
                    dispatched_at=time.monotonic(),
                )
                continue
            worker.shipped.update(new_digests)
            self.last_shipped.extend(new_digests)
            self.tables_shipped += len(new_digests)
            if new_weights is not None:
                worker.weights = new_weights
            inflight[index] = _Inflight(
                index=index,
                units={unit: deadlines[unit] for unit in units},
                dispatched_at=time.monotonic(),
            )
        return inflight

    def _collect(
        self,
        inflight: Dict[int, _Inflight],
        parsed: Dict[WorkUnit, Tuple[object, float]],
    ) -> Set[WorkUnit]:
        """Supervised collection: stream replies, detect death and expiry.

        Returns the units that need another round (their worker died or
        hung before answering).  Expired units resolve to
        :class:`DeadlineExceeded` directly in ``parsed``.
        """
        retry: Set[WorkUnit] = set()

        def worker_down(index: int) -> None:
            """EOF / dead probe / watchdog: salvage units, respawn."""
            flight = inflight.pop(index)
            now = time.monotonic()
            for unit, deadline in flight.units.items():
                if deadline is not None and now >= deadline:
                    parsed[unit] = (
                        DeadlineExceeded(
                            f"deadline expired waiting for {unit[1]!r}"
                        ),
                        0.0,
                    )
                    self.timeouts += 1
                else:
                    retry.add(unit)
            if not self._respawn(index):
                # Downgraded: every process worker is gone.  Salvage all
                # remaining in-flight units for the fallback.
                for other in list(inflight.values()):
                    for unit, deadline in other.units.items():
                        if deadline is not None and now >= deadline:
                            parsed[unit] = (
                                DeadlineExceeded(
                                    f"deadline expired waiting for {unit[1]!r}"
                                ),
                                0.0,
                            )
                            self.timeouts += 1
                        else:
                            retry.add(unit)
                inflight.clear()

        while inflight:
            now = time.monotonic()
            wake = now + self.probe_interval
            for flight in inflight.values():
                for deadline in flight.units.values():
                    if deadline is not None:
                        wake = min(wake, deadline)
                if self.call_timeout is not None:
                    wake = min(wake, flight.dispatched_at + self.call_timeout)
            conns = {self._workers[index].conn: index for index in inflight}
            ready = mp_connection.wait(
                list(conns), timeout=max(0.0, wake - now)
            )
            for conn in ready:
                index = conns[conn]
                if index not in inflight:  # cleared by a downgrade
                    continue
                flight = inflight[index]
                try:
                    while True:
                        reply = conn.recv()
                        kind = reply[0]
                        if kind == "unit":
                            _, unit, parse, seconds = reply
                            flight.units.pop(unit, None)
                            parsed[unit] = (parse, seconds)
                        elif kind == "unit_error":
                            _, unit, message = reply
                            flight.units.pop(unit, None)
                            parsed[unit] = (
                                WorkerFailed(f"pool worker failed: {message}"),
                                0.0,
                            )
                        elif kind == "done":
                            # Anything unanswered at "done" is a protocol
                            # anomaly — retry it rather than hanging.
                            retry.update(flight.units)
                            del inflight[index]
                            break
                        if not conn.poll():
                            break
                except (EOFError, OSError):
                    worker_down(index)
            # Deadline + watchdog + liveness sweep over the still-pending.
            now = time.monotonic()
            for index in list(inflight):
                flight = inflight[index]
                worker = self._workers[index]
                expired = [
                    unit
                    for unit, deadline in flight.units.items()
                    if deadline is not None and now >= deadline
                ]
                hung = (
                    self.call_timeout is not None
                    and now >= flight.dispatched_at + self.call_timeout
                )
                if expired or hung:
                    # The worker is wedged on (at least) an expired unit:
                    # kill it, time the expired units out, retry the rest
                    # on its replacement.
                    worker_down(index)
                elif not worker.process.is_alive():
                    worker_down(index)
        return retry

    def _parse_inline(
        self, unit: WorkUnit, deadline: Optional[float]
    ) -> Tuple[object, float]:
        """Last rung of the ladder: parse in the driver process."""
        if _deadline_expired(deadline):
            self.timeouts += 1
            return (
                DeadlineExceeded(f"deadline expired before parsing {unit[1]!r}"),
                0.0,
            )
        digest, question, k = unit
        table = self._tables.get(digest)
        if table is None:  # pragma: no cover - tables recorded at batch entry
            return WorkerFailed(f"no table for digest {digest}"), 0.0
        self.inline_parses += 1
        started = time.perf_counter()
        parse = self.parser.parse(question, table, k=k)
        return parse, time.perf_counter() - started

    # -- the batch entry point -------------------------------------------------
    def parse_all(self, items: Sequence) -> List[PoolResult]:
        with self._lock:
            if self._closed:
                raise RuntimeError("pool is closed")
            if self._fallback is not None:
                return self._fallback.parse_all(items)
            self._ensure_workers()
            self.batches += 1
            self.units += len(items)

            ordered_units: List[WorkUnit] = []
            deadlines: Dict[WorkUnit, Optional[float]] = {}
            for item in items:
                digest = item.table.fingerprint.digest
                self._tables.setdefault(digest, item.table)
                unit: WorkUnit = (digest, item.question, item.k)
                deadline = getattr(item, "deadline", None)
                if unit not in deadlines:
                    ordered_units.append(unit)
                    deadlines[unit] = deadline
                elif deadlines[unit] is not None:
                    # A unit shared by several items waits for the most
                    # patient of them (no deadline at all wins outright).
                    deadlines[unit] = (
                        None
                        if deadline is None
                        else max(deadlines[unit], deadline)
                    )

            self.last_shipped = []
            parsed: Dict[WorkUnit, Tuple[object, float]] = {}
            pending: Set[WorkUnit] = set(ordered_units)
            rounds = 0
            while pending and self._fallback is None:
                # Pre-dispatch expiry sweep: a unit that is already past
                # its deadline never crosses the pipe.
                for unit in [u for u in ordered_units if u in pending]:
                    if _deadline_expired(deadlines[unit]):
                        parsed[unit] = (
                            DeadlineExceeded(
                                f"deadline expired before parsing {unit[1]!r}"
                            ),
                            0.0,
                        )
                        self.timeouts += 1
                        pending.discard(unit)
                if not pending:
                    break
                groups: Dict[str, List[WorkUnit]] = {}
                for unit in ordered_units:
                    if unit in pending:
                        groups.setdefault(unit[0], []).append(unit)
                assignment = self._assign(groups, offset=rounds)
                inflight = self._dispatch(assignment, deadlines)
                retry = self._collect(inflight, parsed)
                for unit in list(pending):
                    if unit in parsed:
                        pending.discard(unit)
                if retry:
                    self.retries += len(retry)
                rounds += 1
                if rounds > self.max_unit_retries:
                    break

            if pending:
                if self._fallback is not None:
                    # Downgraded mid-batch: the thread fallback finishes
                    # the stragglers (bit-identical by determinism).
                    from .batch import BatchItem

                    leftovers = [u for u in ordered_units if u in pending]
                    fallback_items = [
                        BatchItem(
                            question=unit[1],
                            table=self._tables[unit[0]],
                            k=unit[2],
                            deadline=deadlines[unit],
                        )
                        for unit in leftovers
                    ]
                    for unit, result in zip(
                        leftovers, self._fallback.parse_all(fallback_items)
                    ):
                        parsed[unit] = result
                else:
                    # Retries exhausted: the driver parses what's left.
                    for unit in ordered_units:
                        if unit in pending:
                            parsed[unit] = self._parse_inline(
                                unit, deadlines[unit]
                            )

        results: List[PoolResult] = []
        for item in items:
            unit = (item.table.fingerprint.digest, item.question, item.k)
            parse, seconds = parsed[unit]
            if isinstance(parse, ParseOutput):
                results.append(
                    (dataclasses.replace(parse, table=item.table), seconds)
                )
            else:
                results.append((parse, seconds))
        return results

    def stats(self) -> Dict[str, object]:
        payload = super().stats()
        payload.update(
            {
                "pids": self.pids(),
                "tables_shipped": self.tables_shipped,
                "last_shipped": list(self.last_shipped),
                "registry": {
                    index: len(worker.shipped)
                    for index, worker in enumerate(self._workers)
                },
                "respawns": self.respawns,
                "respawn_failures": self.respawn_failures,
                "retries": self.retries,
                "inline_parses": self.inline_parses,
                "downgrades": self.downgrades,
                "downgraded": self.downgraded,
            }
        )
        if self._fallback is not None:
            payload["fallback"] = self._fallback.stats()
        return payload
