"""Persistent warm worker pools: the serving hot path's engine room.

The per-batch backends (:class:`~repro.perf.batch.BatchParser`'s ad-hoc
``ThreadPoolExecutor``, :class:`~repro.perf.procpool.ProcessPoolBackend`'s
fork-per-call pool) pay their whole setup cost — executor construction,
worker forks, table shipment — on *every* dispatcher batch.  For the
interactive serving regime (many small batches over a long-lived
catalog) that churn ate the concurrency win: the serving bench measured
async throughput *below* sequential.

This module provides the long-lived alternative: a :class:`WorkerPool`
created once (by :class:`~repro.api.engine.ReproEngine` /
:class:`~repro.serving.server.AsyncServer`) and reused across every
batch until :meth:`~WorkerPool.close`.

Two flavours behind one interface:

* :class:`ThreadWorkerPool` — one persistent ``ThreadPoolExecutor``
  driving the shared :class:`~repro.parser.candidates.SemanticParser`.
  No per-batch executor construction; every cache stays shared.
* :class:`ProcessWorkerPool` — persistent worker *processes*, each
  holding a fingerprint-addressed table registry that survives between
  batches.  The driver ships only fingerprints a worker has never seen
  (incremental registry updates — never the whole corpus re-pickled per
  batch), re-syncs model weights only when they changed, and pins shards
  to workers with a stable digest hash so a shard's questions land on
  the worker whose lexicon/grammar/index are already hot.

Correctness contract (the same one every batch backend honours, locked
in by ``tests/test_pool.py``): ``parse_all`` results are index-aligned
with the input items and **bit-identical** to a sequential loop over the
same parser configuration — pinning and persistence change scheduling
and locality, never answers.

Shard pinning and the spill valve
---------------------------------
``pin(digest) = int(digest[:8], 16) % workers`` is stable across
batches, processes and runs: shard S always lands on worker
``pin(S)``, so repeat traffic for S finds warm worker-local caches.
A pure pin would serialise a batch over few shards (one hot worker,
the rest idle), so assignment *spills* deterministically: while a
worker is idle and another holds more than one unit, half of the
busiest worker's largest shard group moves to the idle worker (shipping
that table there, once ever).  The spill pattern is a pure function of
the batch composition, so repeated workloads spill to the same workers
and stay warm there too.  ``ProcessWorkerPool(spill=False)`` disables
the valve for strict-pinning tests.
"""

from __future__ import annotations

import dataclasses
import gc
import multiprocessing
import os
import pickle
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..parser.candidates import ParseOutput, ParserConfig, SemanticParser
from ..parser.model import LogLinearModel
from ..tables.fingerprint import LRUCache
from ..tables.table import Table
from . import procpool
from .procpool import WorkUnit, _available_cpus, _refresh_inherited_locks

#: What ``WorkerPool.parse_all`` returns per item: the parse plus the
#: worker-measured wall-clock seconds it took.
PoolResult = Tuple[ParseOutput, float]


def create_pool(
    backend: str, parser: SemanticParser, max_workers: int = 4
) -> "WorkerPool":
    """The one construction site: a persistent pool for ``backend``."""
    if backend == "process":
        return ProcessWorkerPool(parser, max_workers=max_workers)
    if backend == "thread":
        return ThreadWorkerPool(parser, max_workers=max_workers)
    raise ValueError(f"unknown pool backend {backend!r}")


class WorkerPool:
    """The persistent-pool interface both flavours implement.

    A pool is created once, survives any number of :meth:`parse_all`
    batches, and is torn down with :meth:`close` (idempotent; also a
    context manager).  ``parse_all`` takes
    :class:`~repro.perf.batch.BatchItem` instances and returns
    index-aligned ``(parse, seconds)`` pairs.
    """

    backend: str = "?"

    def __init__(self, parser: SemanticParser, max_workers: int = 4) -> None:
        if max_workers < 1:
            raise ValueError(f"{type(self).__name__} needs max_workers >= 1")
        self.parser = parser
        self.max_workers = max_workers
        self.batches = 0
        self.units = 0
        # Warm explanation registry, shared by both flavours and used by
        # :meth:`NLInterface.ask_many` on the batch path: explanations
        # are a pure function of (table content, query), so entries are
        # keyed ``(fingerprint, query sexpr)`` and survive shard
        # eviction — a warm batch never rebuilds an evicted
        # ``ExplanationGenerator`` just to re-derive identical output.
        self.explanations = LRUCache(
            maxsize=parser.config.candidate_cache_size * 8
        )

    @property
    def workers(self) -> int:
        return self.max_workers

    def parse_all(self, items: Sequence) -> List[PoolResult]:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    def stats(self) -> Dict[str, object]:
        return {
            "backend": self.backend,
            "workers": self.workers,
            "batches": self.batches,
            "units": self.units,
        }

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ThreadWorkerPool(WorkerPool):
    """A persistent thread pool over one shared parser.

    The executor is built lazily on the first multi-item batch and then
    reused for every later batch — the per-batch
    ``ThreadPoolExecutor`` construction/teardown of the old path is the
    churn this class exists to remove.  All parser caches are shared
    (the thread backend's defining property), so answers are trivially
    bit-identical to the sequential loop.

    Like the process flavour's worker-side table registries, the pool
    keeps its own fingerprint-addressed **warm registry** of generated
    candidate lists, immune to the catalog's shard eviction: eviction
    drops the *parser's* per-table caches (driver policy — bounded hot
    set), but the pool re-seeds the parser's own candidate cache from
    the registry before each parse, so an evicted-and-rehydrated shard
    skips candidate generation entirely.  Entries are the parser's own
    content-addressed cache values — generation is deterministic and
    weight-independent (ranking re-runs with the live weights every
    parse), so re-seeding cannot change any answer.
    """

    backend = "thread"

    def __init__(self, parser: SemanticParser, max_workers: int = 4) -> None:
        super().__init__(parser, max_workers=max_workers)
        self._executor: Optional[ThreadPoolExecutor] = None
        self._closed = False
        # Same content-addressed keys and bound as the parser's own
        # candidate cache (reaching into parser internals deliberately —
        # this is persistence plumbing, not API).
        self._registry = LRUCache(maxsize=parser.config.candidate_cache_size)
        # Fully-ranked parses, valid only for the weights snapshot below:
        # the thread analogue of the process workers' per-batch weight
        # resync.  Keyed (fingerprint, question, k); flushed whenever the
        # model weights change, so online training invalidates cleanly.
        self._ranked = LRUCache(maxsize=parser.config.candidate_cache_size)
        self._ranked_weights: Optional[Dict[str, float]] = None

    @property
    def workers(self) -> int:
        # Parsing is pure Python (GIL-bound): threads beyond the cores
        # this process may use cannot overlap compute, they only add
        # switch churn — cap like the process flavour does.
        return min(self.max_workers, _available_cpus()) or 1

    def registry_size(self) -> int:
        """Entries held in the eviction-immune warm registry."""
        return len(self._registry)

    def _parse_one(self, item) -> PoolResult:
        parser = self.parser
        warm = parser.config.cache_candidates
        key = (item.table.fingerprint, item.question)
        ranked_key = (item.table.fingerprint, item.question, item.k)
        started = time.perf_counter()
        if warm:
            ranked = self._ranked.get(ranked_key)
            if ranked is not None:
                # Ranking is deterministic for fixed weights (checked per
                # batch in parse_all), so the memoized parse is value-
                # identical to re-ranking — only the wall-clock differs.
                return (
                    dataclasses.replace(ranked, table=item.table),
                    time.perf_counter() - started,
                )
            if parser._candidate_cache.get(key) is None:
                entry = self._registry.get(key)
                if entry is not None:
                    parser._candidate_cache.put(key, entry)
        parse = parser.parse(item.question, item.table, k=item.k)
        elapsed = time.perf_counter() - started
        if warm:
            entry = parser._candidate_cache.get(key)
            if entry is not None:
                self._registry.put(key, entry)
            self._ranked.put(ranked_key, parse)
        return parse, elapsed

    def parse_all(self, items: Sequence) -> List[PoolResult]:
        if self._closed:
            raise RuntimeError("pool is closed")
        self.batches += 1
        self.units += len(items)
        weights = self.parser.model.weights
        if self._ranked_weights != weights:
            # Same contract as the process workers' weight resync: new
            # weights flush every memoized ranking before any parse runs.
            self._ranked.clear()
            self._ranked_weights = dict(weights)
        if self.workers == 1 or len(items) <= 1:
            return [self._parse_one(item) for item in items]
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-pool"
            )
        return list(self._executor.map(self._parse_one, items))

    def close(self) -> None:
        self._closed = True
        self._registry.clear()
        self._ranked.clear()
        self.explanations.clear()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def stats(self) -> Dict[str, object]:
        payload = super().stats()
        payload["registry"] = self.registry_size()
        payload["ranked"] = len(self._ranked)
        return payload


# ---------------------------------------------------------------------------
# the process flavour
# ---------------------------------------------------------------------------


def _pool_worker_main(conn, weights: Dict[str, float], config: ParserConfig) -> None:
    """The long-lived worker loop (runs in a child process).

    State that persists across batches: the fingerprint-addressed table
    registry and the worker's parser with all its per-table caches —
    exactly what the per-batch pool threw away each call.  The GC is
    frozen/disabled for the same copy-on-write reasons as
    :func:`repro.perf.procpool._init_worker`.
    """
    gc.freeze()
    gc.disable()
    parser = procpool._FORK_PARSER
    if parser is not None:
        _refresh_inherited_locks(parser)
    else:  # spawn start method: rebuild from the shipped weights/config
        model = LogLinearModel()
        model.weights = dict(weights)
        parser = SemanticParser(model=model, config=config)
    tables: Dict[str, Table] = {}
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        kind = message[0]
        if kind == "stop":
            break
        if kind != "parse":  # pragma: no cover - protocol guard
            conn.send(("error", f"unknown message kind {kind!r}"))
            continue
        _, tables_blob, new_weights, units = message
        try:
            if tables_blob is not None:
                for table in pickle.loads(tables_blob):
                    tables[table.fingerprint.digest] = table
            if new_weights is not None:
                parser.model.weights = dict(new_weights)
            results = []
            for unit in units:
                digest, question, k = unit
                table = tables[digest]
                started = time.perf_counter()
                parse = parser.parse(question, table, k=k)
                elapsed = time.perf_counter() - started
                # The driver re-attaches its own table object; candidates
                # only reference cells, never the table itself.
                parse.table = None
                results.append((unit, parse, elapsed))
            conn.send(("parsed", results))
        except Exception as error:  # surface, don't kill the worker
            conn.send(("error", f"{type(error).__name__}: {error}"))


@dataclass
class _Worker:
    """Driver-side handle of one persistent worker process."""

    process: multiprocessing.Process
    conn: object  # multiprocessing.connection.Connection
    shipped: set = field(default_factory=set)
    weights: Dict[str, float] = field(default_factory=dict)


class ProcessWorkerPool(WorkerPool):
    """Persistent worker processes with shard affinity.

    Workers fork lazily on the first batch (inheriting the driver's warm
    caches copy-on-write under the ``fork`` start method, guarded by the
    same :data:`~repro.perf.procpool._FORK_LOCK` the per-batch backend
    uses) and live until :meth:`close`.  Across batches each worker
    keeps its table registry and parser caches, the driver tracks what
    every worker already holds, and work routes by the stable pin hash —
    see the module docstring for the full contract.

    ``parse_all`` is thread-safe: concurrent batches (e.g. a broadcast
    and a routed group interleaved by the serving dispatcher) serialise
    on a driver-side lock; each still fans out across all workers.
    """

    backend = "process"

    def __init__(
        self, parser: SemanticParser, max_workers: int = 4, spill: bool = True
    ) -> None:
        super().__init__(parser, max_workers=max_workers)
        self.spill = spill
        self.tables_shipped = 0
        self.last_shipped: List[str] = []
        self._workers: List[_Worker] = []
        self._lock = threading.Lock()
        self._closed = False

    @property
    def workers(self) -> int:
        # Like the per-batch backend: never more processes than cores.
        return min(self.max_workers, _available_cpus()) or 1

    def pin(self, digest: str) -> int:
        """The stable shard→worker hash (pure; same answer every run)."""
        return int(digest[:8], 16) % self.workers

    def pids(self) -> List[int]:
        """PIDs of the live workers (empty before the first batch)."""
        return [worker.process.pid for worker in self._workers]

    # -- lifecycle -------------------------------------------------------------
    def _ensure_workers(self) -> None:
        if self._workers:
            return
        weights = self.parser.model.weights
        # Fork under the shared lock: _FORK_PARSER is module-global state
        # and a concurrent per-batch ProcessPoolBackend fork must not see
        # (or null) our parser mid-flight.
        with procpool._FORK_LOCK:
            fork_start = multiprocessing.get_start_method() == "fork"
            if fork_start:
                procpool._FORK_PARSER = self.parser
            try:
                for _ in range(self.workers):
                    parent_conn, child_conn = multiprocessing.Pipe()
                    process = multiprocessing.Process(
                        target=_pool_worker_main,
                        args=(child_conn, weights, self.parser.config),
                        daemon=True,
                    )
                    process.start()
                    child_conn.close()
                    self._workers.append(
                        _Worker(
                            process=process,
                            conn=parent_conn,
                            weights=dict(weights),
                        )
                    )
            finally:
                if fork_start:
                    procpool._FORK_PARSER = None

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self.explanations.clear()
            for worker in self._workers:
                try:
                    worker.conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
            for worker in self._workers:
                worker.process.join(timeout=5)
                if worker.process.is_alive():  # pragma: no cover - stuck worker
                    worker.process.terminate()
                    worker.process.join(timeout=5)
                worker.conn.close()
            self._workers = []

    # -- scheduling ------------------------------------------------------------
    def _assign(
        self, groups: Dict[str, List[WorkUnit]]
    ) -> Dict[int, Dict[str, List[WorkUnit]]]:
        """Pin each shard's units, then spill to idle workers.

        Deterministic: pinning is a pure hash, donors are picked by
        (load, lowest index), targets lowest-index-first, and a split
        moves the tail half of the donor's largest group.
        """
        assignment: Dict[int, Dict[str, List[WorkUnit]]] = {}
        for digest, units in groups.items():
            assignment.setdefault(self.pin(digest), {}).setdefault(
                digest, []
            ).extend(units)
        if not self.spill:
            return assignment

        def load(index: int) -> int:
            return sum(len(units) for units in assignment.get(index, {}).values())

        idle = [index for index in range(self.workers) if load(index) == 0]
        while idle:
            donors = [index for index in range(self.workers) if load(index) > 1]
            if not donors:
                break
            donor = max(donors, key=lambda index: (load(index), -index))
            donor_groups = assignment[donor]
            digest, units = max(
                donor_groups.items(), key=lambda pair: (len(pair[1]), pair[0])
            )
            target = idle.pop(0)
            if len(units) == 1:
                # All of the donor's groups are singletons: move one whole
                # group instead of splitting.
                moved = donor_groups.pop(digest)
            else:
                half = len(units) // 2
                moved = units[len(units) - half:]
                del units[len(units) - half:]
            assignment.setdefault(target, {}).setdefault(digest, []).extend(moved)
        return assignment

    # -- the batch entry point -------------------------------------------------
    def parse_all(self, items: Sequence) -> List[PoolResult]:
        with self._lock:
            if self._closed:
                raise RuntimeError("pool is closed")
            self._ensure_workers()
            self.batches += 1
            self.units += len(items)

            tables: Dict[str, Table] = {}
            groups: Dict[str, List[WorkUnit]] = {}
            seen: set = set()
            for item in items:
                digest = item.table.fingerprint.digest
                tables.setdefault(digest, item.table)
                unit: WorkUnit = (digest, item.question, item.k)
                if unit not in seen:
                    seen.add(unit)
                    groups.setdefault(digest, []).append(unit)

            assignment = self._assign(groups)
            weights = self.parser.model.weights
            shipped_now: List[str] = []
            busy: List[Tuple[_Worker, int]] = []
            for index, worker_groups in sorted(assignment.items()):
                worker = self._workers[index]
                units = [
                    unit for _, units in sorted(worker_groups.items())
                    for unit in units
                ]
                if not units:
                    continue
                # Incremental registry update: only fingerprints this
                # worker has never held cross the pipe.
                new_digests = [
                    digest
                    for digest in sorted(worker_groups)
                    if digest not in worker.shipped
                ]
                blob = (
                    pickle.dumps(
                        [tables[digest] for digest in new_digests],
                        protocol=pickle.HIGHEST_PROTOCOL,
                    )
                    if new_digests
                    else None
                )
                new_weights = None if worker.weights == weights else dict(weights)
                worker.conn.send(("parse", blob, new_weights, units))
                worker.shipped.update(new_digests)
                shipped_now.extend(new_digests)
                if new_weights is not None:
                    worker.weights = new_weights
                busy.append((worker, len(units)))
            self.tables_shipped += len(shipped_now)
            self.last_shipped = shipped_now

            parsed: Dict[WorkUnit, Tuple[ParseOutput, float]] = {}
            for worker, _ in busy:
                try:
                    reply = worker.conn.recv()
                except (EOFError, OSError) as error:
                    raise RuntimeError(
                        f"pool worker {worker.process.pid} died mid-batch"
                    ) from error
                if reply[0] == "error":
                    raise RuntimeError(f"pool worker failed: {reply[1]}")
                for unit, parse, seconds in reply[1]:
                    parsed[unit] = (parse, seconds)

        results: List[PoolResult] = []
        for item in items:
            unit = (item.table.fingerprint.digest, item.question, item.k)
            parse, seconds = parsed[unit]
            results.append((dataclasses.replace(parse, table=item.table), seconds))
        return results

    def stats(self) -> Dict[str, object]:
        payload = super().stats()
        payload.update(
            {
                "pids": self.pids(),
                "tables_shipped": self.tables_shipped,
                "last_shipped": list(self.last_shipped),
                "registry": {
                    index: len(worker.shipped)
                    for index, worker in enumerate(self._workers)
                },
            }
        )
        return payload
