"""The live-corpus churn bench: delta maintenance vs full rebuild.

The versioned-lineage machinery (:meth:`TableCatalog.update`,
:meth:`CorpusIndex.update`, :func:`~repro.tables.index.update_index`)
exists to make one table edit cost *one table's worth* of work instead
of a corpus-wide rebuild.  This harness measures exactly that claim:

* the **delta** mode starts from a registered corpus and publishes a
  deterministic script of random edits through
  :meth:`TableCatalog.update` — each edit diffs the snapshots, patches
  only the changed posting keys of the retrieval index, rebuilds only
  the changed per-column structures, and retires the superseded shard;
* the **full_rebuild** mode replays the same script the pre-lineage
  way: after every edit, throw the catalog away and re-register every
  table from scratch.

After the script runs, the harness checks the hard invariant the whole
subsystem is built on: the delta-maintained catalog answers every bench
question **bit-identically** to a from-scratch catalog over the final
table set, and its retrieval index snapshot is structurally equal to a
fresh build.  The payload becomes the committed ``BENCH_churn.json``
trajectory artifact (schema ``repro-bench-churn-v1``, validated by
``scripts/validate_wire.py``); the ``repro bench-churn`` CLI sub-command
and the CI ``churn-smoke`` job run the same harness on demand.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..retrieval.corpus_index import CorpusIndex
from ..tables.catalog import TableCatalog
from ..tables.table import Table
from .bench import bench_scale, quantize_seconds, timing_summary

#: Default number of edits in the script (scaled by ``REPRO_BENCH_SCALE``).
DEFAULT_EDITS = 12


def _raw_rows(table: Table) -> List[List[str]]:
    return [[cell.display() for cell in record.cells] for record in table.records]


def churn_edit_script(
    tables: Sequence[Table], edits: int, seed: int = 2019
) -> List[Tuple[str, Table]]:
    """A deterministic script of ``edits`` random table edits.

    Each step picks a table (by name), applies one edit — a cell
    rewrite, an appended row, or a dropped row — and yields
    ``(name, new_table)``.  Steps compound: the new content of step *i*
    is the base of the next edit to the same table, the same regime a
    live corpus sees.
    """
    rng = random.Random(seed)
    current: Dict[str, Table] = {table.name: table for table in tables}
    names = sorted(current)
    script: List[Tuple[str, Table]] = []
    for step in range(edits):
        name = rng.choice(names)
        table = current[name]
        rows = _raw_rows(table)
        kind = rng.random()
        if kind < 0.7 or len(rows) < 3:
            # Rewrite one cell: the common case, exercising the
            # changed-column delta path with the row count unchanged.
            row = rng.randrange(len(rows))
            column = rng.randrange(len(table.columns))
            rows[row][column] = f"edit{step} {rng.randrange(10000)}"
        elif kind < 0.85:
            # Append a row (row_count_changed: full per-table reindex).
            donor = list(rows[rng.randrange(len(rows))])
            donor[0] = f"new{step}"
            rows.append(donor)
        else:
            rows.pop(rng.randrange(len(rows)))
        new_table = Table(columns=table.columns, rows=rows, name=name)
        current[name] = new_table
        script.append((name, new_table))
    return script


@dataclass
class ChurnReport:
    """The harness output: both modes' timings plus the identity verdicts."""

    tables: int
    questions: int
    edits: int
    identical_answers: bool
    identical_index: bool
    catalog_stats: Dict[str, int] = field(default_factory=dict)
    delta_total_seconds: float = 0.0
    delta_edit_seconds: List[float] = field(default_factory=list)
    rebuild_total_seconds: float = 0.0
    rebuild_edit_seconds: List[float] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        if self.delta_total_seconds <= 0:
            return 0.0
        return self.rebuild_total_seconds / self.delta_total_seconds

    def rows(self) -> List[Tuple[str, str, str, str]]:
        """CLI table rows: mode, total, mean edit latency, speedup."""
        out = []
        for mode, total, series in (
            ("full_rebuild", self.rebuild_total_seconds, self.rebuild_edit_seconds),
            ("delta", self.delta_total_seconds, self.delta_edit_seconds),
        ):
            mean = total / len(series) * 1000 if series else 0.0
            speedup = (
                f"{self.speedup:.1f}x" if mode == "delta" else "1.0x"
            )
            out.append((mode, f"{total:.3f}s", f"{mean:.1f}ms", speedup))
        return out

    def to_payload(self) -> Dict[str, object]:
        """The ``BENCH_churn.json`` shape (schema ``repro-bench-churn-v1``).

        Structural facts (corpus size, edit count, the identity
        verdicts, the catalog's lineage counters) are run-stable;
        everything wall-clock-derived lives under ``timings`` at
        1 ms resolution, the same artifact-diff contract as the other
        committed bench payloads.
        """
        return {
            "schema": "repro-bench-churn-v1",
            "tables": self.tables,
            "questions": self.questions,
            "edits": self.edits,
            "identical": {
                "answers": self.identical_answers,
                "index": self.identical_index,
            },
            "catalog": dict(self.catalog_stats),
            "timings": {
                "delta": {
                    "total_seconds": quantize_seconds(self.delta_total_seconds),
                    "edit": timing_summary(self.delta_edit_seconds),
                },
                "full_rebuild": {
                    "total_seconds": quantize_seconds(self.rebuild_total_seconds),
                    "edit": timing_summary(self.rebuild_edit_seconds),
                },
                "speedup": round(self.speedup, 2),
            },
        }


def _answer_signature(catalog: TableCatalog, question: str, name: str):
    response = catalog.ask(question, name)
    return [
        (
            item.rank,
            item.answer,
            item.utterance,
            item.candidate.sexpr,
            item.candidate.score,
        )
        for item in response.explained
    ]


def run_churn_bench(
    pairs: Sequence[Tuple[str, Table]],
    edits: Optional[int] = None,
    seed: int = 2019,
) -> ChurnReport:
    """Run the churn harness over a ``(question, table)`` workload.

    ``edits`` defaults to :data:`DEFAULT_EDITS` scaled by
    ``REPRO_BENCH_SCALE`` (floored at 4, so even the CI smoke run
    exercises compounding edits to the same table).
    """
    if edits is None:
        edits = max(4, int(round(DEFAULT_EDITS * bench_scale())))
    tables: List[Table] = []
    seen = set()
    for _, table in pairs:
        if table.name not in seen:
            seen.add(table.name)
            tables.append(table)
    script = churn_edit_script(tables, edits, seed=seed)

    # -- delta mode: one long-lived catalog, edits flow through update().
    delta_catalog = TableCatalog()
    delta_catalog.register_all(tables)
    delta_edit_seconds: List[float] = []
    for name, new_table in script:
        started = time.perf_counter()
        delta_catalog.update(name, new_table)
        delta_edit_seconds.append(time.perf_counter() - started)

    # -- full-rebuild mode: every edit pays a from-scratch registration
    # of the whole corpus (the pre-lineage cost model).
    final: Dict[str, Table] = {table.name: table for table in tables}
    rebuild_edit_seconds: List[float] = []
    for name, new_table in script:
        final[name] = new_table
        snapshot = [final[table.name] for table in tables]
        started = time.perf_counter()
        rebuild_catalog = TableCatalog()
        rebuild_catalog.register_all(snapshot)
        rebuild_edit_seconds.append(time.perf_counter() - started)

    # -- the invariant: delta-maintained state is bit-identical to a
    # from-scratch build over the final table set.
    fresh_catalog = TableCatalog()
    fresh_catalog.register_all([final[table.name] for table in tables])
    identical_answers = all(
        _answer_signature(delta_catalog, question, table.name)
        == _answer_signature(fresh_catalog, question, table.name)
        for question, table in pairs
    )
    fresh_index = CorpusIndex()
    for table in tables:
        fresh_index.add(final[table.name])
    identical_index = delta_catalog._index.snapshot() == fresh_index.snapshot()

    stats = delta_catalog.stats()
    return ChurnReport(
        tables=len(tables),
        questions=len(pairs),
        edits=len(script),
        identical_answers=identical_answers,
        identical_index=identical_index,
        catalog_stats={
            "version": int(stats["version"]),
            "updates": int(stats["updates"]),
            "retired": int(stats["retired"]),
            "shards": int(stats["shards"]),
        },
        delta_total_seconds=sum(delta_edit_seconds),
        delta_edit_seconds=delta_edit_seconds,
        rebuild_total_seconds=sum(rebuild_edit_seconds),
        rebuild_edit_seconds=rebuild_edit_seconds,
    )
