"""Batching, caching and benchmarking: the deployment-scale subsystem.

The paper's interactive deployment stands or falls on latency (Table 7):
every question triggers generation and execution of up to 600 candidate
lambda DCS queries.  This package holds the throughput machinery built on
the content-addressed caches of :mod:`repro.tables.fingerprint` and
:mod:`repro.dcs.memo`:

* :class:`~repro.perf.batch.BatchParser` — parse many (question, table)
  pairs concurrently through one shared parser, order-stable and
  bit-identical to the sequential loop;
* :func:`~repro.perf.bench.run_parse_bench` — the three-mode perf harness
  (sequential vs memoized vs batched) whose payload becomes the
  ``BENCH_parse.json`` trajectory artifact;
* re-exports of the cache primitives so callers can reach everything
  performance-related through ``repro.perf``.
"""

from ..dcs.memo import ExecutionCache, MemoizedExecutor, execute_memoized
from ..tables.fingerprint import LRUCache, TableFingerprint, fingerprint_table
from .batch import BatchItem, BatchParseResult, BatchParser, BatchReport
from .bench import (
    BENCH_MODES,
    ModeTiming,
    ParseBenchReport,
    bench_pairs_from_dataset,
    run_parse_bench,
    sequential_parser_config,
)

__all__ = [
    "BatchItem",
    "BatchParseResult",
    "BatchParser",
    "BatchReport",
    "BENCH_MODES",
    "ModeTiming",
    "ParseBenchReport",
    "bench_pairs_from_dataset",
    "run_parse_bench",
    "sequential_parser_config",
    "ExecutionCache",
    "MemoizedExecutor",
    "execute_memoized",
    "LRUCache",
    "TableFingerprint",
    "fingerprint_table",
]
