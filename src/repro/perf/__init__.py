"""Batching, caching and benchmarking: the deployment-scale subsystem.

The paper's interactive deployment stands or falls on latency (Table 7):
every question triggers generation and execution of up to 600 candidate
lambda DCS queries.  This package holds the throughput machinery built on
the content-addressed caches of :mod:`repro.tables.fingerprint` and
:mod:`repro.dcs.memo`:

* :class:`~repro.perf.batch.BatchParser` — parse many (question, table)
  pairs concurrently through one shared parser, order-stable and
  bit-identical to the sequential loop, on a thread or process pool;
* :class:`~repro.perf.procpool.ProcessPoolBackend` — the process backend:
  fingerprint-addressed table shipping, deduplicated work units, true
  (GIL-free) parallel candidate generation;
* :class:`~repro.perf.diskcache.DiskCache` — the content-addressed
  on-disk store persisting candidate lists and execution memo bundles
  across processes and sessions;
* :func:`~repro.perf.bench.run_parse_bench` — the five-mode perf harness
  (sequential / memoized / indexed / batched / process) whose payload
  becomes the ``BENCH_parse.json`` trajectory artifact;
* :func:`~repro.perf.churn.run_churn_bench` — the live-corpus churn
  harness (delta maintenance vs full rebuild under a random edit
  script) whose payload becomes ``BENCH_churn.json``;
* re-exports of the cache primitives so callers can reach everything
  performance-related through ``repro.perf``.
"""

from ..dcs.memo import ExecutionCache, MemoizedExecutor, execute_memoized
from ..tables.fingerprint import LRUCache, TableFingerprint, fingerprint_table
from ..tables.index import TableIndex, clear_index_cache, index_cache_stats, table_index
from .batch import BACKENDS, BatchItem, BatchParseResult, BatchParser, BatchReport
from .bench import (
    BENCH_MODES,
    ModeTiming,
    ParseBenchReport,
    bench_pairs_from_dataset,
    bench_scale,
    memoized_parser_config,
    quantize_seconds,
    run_parse_bench,
    sequential_parser_config,
    timing_summary,
)
from .churn import ChurnReport, churn_edit_script, run_churn_bench
from .discovery import RECALL_KS, DiscoveryReport, run_discovery_bench
from .join import JOIN_RECALL_KS, JoinReport, run_join_bench
from .diskcache import DiskCache
from .pool import (
    DeadlineExceeded,
    PoolError,
    ProcessWorkerPool,
    ThreadWorkerPool,
    WorkerFailed,
    WorkerPool,
    create_pool,
)
from .procpool import ProcessPoolBackend

__all__ = [
    "BACKENDS",
    "BatchItem",
    "BatchParseResult",
    "BatchParser",
    "BatchReport",
    "BENCH_MODES",
    "ChurnReport",
    "churn_edit_script",
    "run_churn_bench",
    "DiscoveryReport",
    "RECALL_KS",
    "run_discovery_bench",
    "JoinReport",
    "JOIN_RECALL_KS",
    "run_join_bench",
    "DeadlineExceeded",
    "DiskCache",
    "PoolError",
    "WorkerFailed",
    "ModeTiming",
    "ParseBenchReport",
    "ProcessPoolBackend",
    "ProcessWorkerPool",
    "ThreadWorkerPool",
    "WorkerPool",
    "create_pool",
    "TableIndex",
    "table_index",
    "index_cache_stats",
    "clear_index_cache",
    "bench_pairs_from_dataset",
    "bench_scale",
    "memoized_parser_config",
    "quantize_seconds",
    "run_parse_bench",
    "sequential_parser_config",
    "timing_summary",
    "ExecutionCache",
    "MemoizedExecutor",
    "execute_memoized",
    "LRUCache",
    "TableFingerprint",
    "fingerprint_table",
]
