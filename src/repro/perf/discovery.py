"""The table-discovery bench: router recall and build speed at corpus scale.

The retrieval substrate was built for thousand-shard corpora but every
committed bench ran on 2–4 tables; this harness measures it at the scale
it exists for.  Over a synthetic discovery corpus
(:func:`~repro.dataset.corpus.build_discovery_corpus` — overlapping
titles, near-duplicate schemas, shared vocabulary, Zipf-skewed question
popularity) it reports:

* **build** — wall-clock of sequential registration
  (:meth:`TableCatalog.register_all`, one ``add()`` per table) vs bulk
  registration (:meth:`TableCatalog.register_many` — batch-memoized
  posting extraction merged under one index lock acquisition), plus the
  speedup and a structural-equality check of the two resulting indexes.
  Both arms are timed best-of-``build_repeats`` alternating runs — the
  ``timeit`` convention: the minimum is the measurement, everything
  above it is interpreter/allocator noise;
* **recall@k** — for each gold-labeled question, whether the router's
  uncapped ranking places the gold shard in the top 1/5/10 (a fallback
  decision counts as a miss: the router learned nothing);
* **routing** — p50/p95 latency of the capped
  (``max_candidates=top``) routing hot path, and the routed parse count
  against the broadcast shard count (the work pruning saves);
* **identity** — on a bounded question sample, whether the pruned
  ``ask_any`` answer is bit-identical to the broadcast answer whenever
  the broadcast's top shard survived the cap (the no-lost-answers
  contract under top-N pruning; the unconditional property is in
  ``tests/test_retrieval.py``, this is its corpus-scale spot check).

The payload becomes the committed ``BENCH_discovery.json`` (schema
``repro-bench-discovery-v1``, validated by ``scripts/validate_wire.py``);
``repro bench-discovery`` and the CI ``discovery-smoke`` job run the
same harness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..dataset.corpus import CorpusConfig, DiscoveryCorpus, build_discovery_corpus
from ..tables.catalog import TableCatalog
from .bench import quantize_seconds


def _latency_summary(series: Sequence[float]) -> Dict[str, float]:
    # Imported lazily: repro.serving imports repro.interface, which
    # imports repro.perf at package init (the same cycle churn avoids).
    from ..serving.bench import latency_summary

    return latency_summary(series)

#: The recall cutoffs every run reports.
RECALL_KS = (1, 5, 10)


@dataclass
class DiscoveryReport:
    """The harness output: corpus facts, recall, timings, identity."""

    shards: int
    questions: int
    max_candidates: int
    recall: Dict[int, float] = field(default_factory=dict)
    recall_hits: Dict[int, int] = field(default_factory=dict)
    fallbacks: int = 0
    routed_parses: int = 0
    broadcast_parses: int = 0
    identical: bool = True
    identity_checked: int = 0
    identity_skipped: int = 0
    digest_collisions_repaired: int = 0
    index_stats: Dict[str, int] = field(default_factory=dict)
    build_sequential_seconds: float = 0.0
    build_bulk_seconds: float = 0.0
    build_workers: int = 1
    build_repeats: int = 1
    identical_index: bool = True
    routing_seconds: List[float] = field(default_factory=list)

    @property
    def build_speedup(self) -> float:
        if self.build_bulk_seconds <= 0:
            return 0.0
        return self.build_sequential_seconds / self.build_bulk_seconds

    @property
    def mean_routed(self) -> float:
        if not self.questions:
            return 0.0
        return self.routed_parses / self.questions

    def rows(self) -> List[Tuple[str, str]]:
        """CLI summary rows: metric name, value."""
        out: List[Tuple[str, str]] = [
            ("shards", str(self.shards)),
            ("questions", str(self.questions)),
        ]
        for k in RECALL_KS:
            out.append((f"recall@{k}", f"{self.recall.get(k, 0.0):.3f}"))
        out.extend(
            [
                ("fallbacks", str(self.fallbacks)),
                (
                    "parses/question",
                    f"{self.mean_routed:.1f} routed vs {self.shards} broadcast",
                ),
                (
                    "build",
                    f"sequential {self.build_sequential_seconds:.3f}s, "
                    f"bulk {self.build_bulk_seconds:.3f}s "
                    f"({self.build_speedup:.2f}x)",
                ),
            ]
        )
        latencies = _latency_summary(self.routing_seconds)
        out.append(
            (
                "routing latency",
                f"p50 {latencies['p50_ms']}ms, p95 {latencies['p95_ms']}ms",
            )
        )
        out.append(
            (
                "identity",
                f"{'ok' if self.identical else 'DIVERGED'} "
                f"({self.identity_checked} checked, "
                f"{self.identity_skipped} gold-unreachable skipped)",
            )
        )
        return out

    def to_payload(self) -> Dict[str, object]:
        """The ``BENCH_discovery.json`` shape (``repro-bench-discovery-v1``).

        Structural facts (corpus size, recall counts, parse counts, the
        identity verdicts) are run-stable for a fixed seed and scale;
        everything wall-clock-derived lives under ``timings`` at the
        usual quantized resolution, the same artifact-diff contract as
        the other committed bench payloads.
        """
        latencies = _latency_summary(self.routing_seconds)
        return {
            "schema": "repro-bench-discovery-v1",
            "shards": self.shards,
            "questions": self.questions,
            "max_candidates": self.max_candidates,
            "recall": {
                str(k): round(self.recall.get(k, 0.0), 4) for k in RECALL_KS
            },
            "recall_hits": {
                str(k): self.recall_hits.get(k, 0) for k in RECALL_KS
            },
            "fallbacks": self.fallbacks,
            "parses": {
                "routed_total": self.routed_parses,
                "routed_per_question": round(self.mean_routed, 2),
                "broadcast_per_question": self.shards,
            },
            "identical": self.identical,
            "identity": {
                "checked": self.identity_checked,
                "skipped_gold_unreachable": self.identity_skipped,
            },
            "corpus": {
                "digest_collisions_repaired": self.digest_collisions_repaired,
            },
            "index": dict(self.index_stats),
            "timings": {
                "build": {
                    "sequential_seconds": quantize_seconds(
                        self.build_sequential_seconds
                    ),
                    "bulk_seconds": quantize_seconds(self.build_bulk_seconds),
                    "speedup": round(self.build_speedup, 2),
                    "workers": self.build_workers,
                    "repeats": self.build_repeats,
                    "identical_index": self.identical_index,
                },
                "routing": {
                    "p50_ms": latencies["p50_ms"],
                    "p95_ms": latencies["p95_ms"],
                },
            },
        }


def _answer_signature(answer) -> List[Tuple]:
    """The bit-identity view of one :class:`CatalogAnswer`'s ranking."""
    out = []
    for ref, response in answer.ranked:
        top = response.top
        out.append(
            (
                ref.digest,
                top.candidate.sexpr if top is not None else None,
                top.candidate.score if top is not None else None,
                top.answer if top is not None else None,
            )
        )
    return out


def run_discovery_bench(
    config: Optional[CorpusConfig] = None,
    max_candidates: int = 10,
    workers: Optional[int] = None,
    identity_sample: int = 8,
    corpus: Optional[DiscoveryCorpus] = None,
    build_repeats: int = 3,
) -> DiscoveryReport:
    """Run the discovery harness; see the module docstring for the plan.

    ``identity_sample`` bounds the pruned-vs-broadcast answer check (a
    broadcast parses *every* shard, which at 500+ shards is the one
    genuinely expensive step); the first N questions whose gold shard is
    retrievable are checked.  ``corpus`` injects a pre-built corpus
    (the CI smoke path reuses one across assertions).  ``build_repeats``
    is the best-of repeat count for the build-timing arms: each arm runs
    that many times, alternating so neither is always the cold first
    run, and the minimum is the measurement.
    """
    if corpus is None:
        corpus = build_discovery_corpus(config or CorpusConfig())
    tables = corpus.tables
    names = corpus.names

    # Force every fingerprint before timing either arm: fingerprinting
    # is generation cost, cached on the Table, and must not bias
    # whichever arm runs first.
    for table in tables:
        table.fingerprint

    sequential_seconds = float("inf")
    bulk_seconds = float("inf")
    sequential_catalog = TableCatalog()
    catalog = TableCatalog()
    for _ in range(max(1, build_repeats)):
        started = time.perf_counter()
        sequential_catalog = TableCatalog()
        sequential_catalog.register_all(tables, names=names)
        sequential_seconds = min(
            sequential_seconds, time.perf_counter() - started
        )

        started = time.perf_counter()
        catalog = TableCatalog()
        catalog.register_many(tables, names=names, workers=workers)
        bulk_seconds = min(bulk_seconds, time.perf_counter() - started)

    identical_index = (
        catalog._index.snapshot() == sequential_catalog._index.snapshot()
    )

    # -- recall@k over the uncapped ranking ------------------------------
    max_k = max(RECALL_KS)
    hits = {k: 0 for k in RECALL_KS}
    fallbacks = 0
    routed_parses = 0
    routing_seconds: List[float] = []
    gold_in_cap: List[bool] = []
    for probe in corpus.questions:
        decision = catalog.routing(probe.question)
        if decision.fallback:
            fallbacks += 1
            gold_in_cap.append(False)
        else:
            position = next(
                (
                    rank
                    for rank, ref in enumerate(decision.candidates[:max_k])
                    if ref.digest == probe.gold_digest
                ),
                None,
            )
            for k in RECALL_KS:
                if position is not None and position < k:
                    hits[k] += 1
            gold_in_cap.append(
                position is not None and position < max_candidates
            )
        # The capped hot path: what serving would parse, and how fast
        # the routing decision itself is.
        started = time.perf_counter()
        capped = catalog.routing(probe.question, max_candidates=max_candidates)
        routing_seconds.append(time.perf_counter() - started)
        routed_parses += capped.num_candidates

    # -- pruned-vs-broadcast identity on a bounded sample ----------------
    identical = True
    checked = 0
    skipped = 0
    for probe, retrievable in zip(corpus.questions, gold_in_cap):
        if checked >= identity_sample:
            break
        if not retrievable:
            skipped += 1
            continue
        pruned = catalog.ask_any(
            probe.question, max_candidates=max_candidates
        )
        broadcast = catalog.ask_any(probe.question, prune=False)
        checked += 1
        # The contract is conditional: the top answer is bit-identical
        # whenever the broadcast's top shard survived the cap (removing
        # shards never reorders the survivors).
        top_ref = broadcast.ranked[0][0] if broadcast.ranked else None
        if top_ref is not None and pruned.routing.is_candidate(top_ref.digest):
            if _answer_signature(pruned)[:1] != _answer_signature(broadcast)[:1]:
                identical = False

    questions = len(corpus.questions)
    return DiscoveryReport(
        shards=len(tables),
        questions=questions,
        max_candidates=max_candidates,
        recall={
            k: (hits[k] / questions if questions else 0.0) for k in RECALL_KS
        },
        recall_hits=hits,
        fallbacks=fallbacks,
        routed_parses=routed_parses,
        broadcast_parses=len(tables) * questions,
        identical=identical,
        identity_checked=checked,
        identity_skipped=skipped,
        digest_collisions_repaired=corpus.digest_collisions_repaired,
        index_stats={
            key: int(value) for key, value in catalog.stats()["retrieval"].items()
        },
        build_sequential_seconds=sequential_seconds,
        build_bulk_seconds=bulk_seconds,
        build_workers=workers or 1,
        build_repeats=max(1, build_repeats),
        identical_index=identical_index,
        routing_seconds=routing_seconds,
    )
