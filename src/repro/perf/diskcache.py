"""A content-addressed on-disk cache shared across processes.

The in-memory caches of PR 1 die with the process; this store makes the
expensive artifacts — whole candidate lists and memoized execution
results — survive restarts and be shared by concurrent workers.  It
works because every key is already content-addressed: the
:class:`~repro.tables.fingerprint.TableFingerprint` digest is stable
across processes and sessions, so a warm-start process can trust a disk
entry written by any other process that saw the same table content.

Layout (all paths under the cache root)::

    v1/<namespace>/<digest[:2]>/<digest>.pkl

where ``namespace`` is ``candidates`` (one entry per
``(table fingerprint, question, generation signature)``) or
``execution`` (one bundle of memoized sub-query results per table
fingerprint), and ``digest`` is a SHA-256 over the entry key.  The
two-hex-digit fan-out directory keeps any single directory small.

Writes are atomic (temp file + ``os.replace``) so concurrent writers —
thread pools, process pools, parallel test runs — can share one root
without locks: both racers write byte-equal payloads (everything cached
here is deterministic), and the loser's replace is a no-op in effect.
Unreadable or version-mismatched entries are treated as misses and
removed, so schema bumps and torn files degrade to a cold start, never
an error.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
from pathlib import Path
from typing import Any, Dict, Optional

from .. import faults

#: Bump to invalidate every existing on-disk entry.
DISK_CACHE_SCHEMA = "repro-diskcache-v1"

#: Namespace of per-question candidate-list entries.
CANDIDATES_NAMESPACE = "candidates"
#: Namespace of per-table execution-memo bundles.
EXECUTION_NAMESPACE = "execution"
#: Namespace of evicted catalog shards (pickled tables, keyed by digest).
TABLES_NAMESPACE = "tables"


def _digest(key: object) -> str:
    """SHA-256 of the key's canonical repr (keys are tuples of primitives)."""
    return hashlib.sha256(repr(key).encode("utf-8", "surrogatepass")).hexdigest()


class DiskCache:
    """A pickle-backed key/value store under one root directory.

    Parameters
    ----------
    root:
        The cache directory (created on first write).  Safe to share
        between threads and processes; see the module docstring for the
        atomicity story.
    """

    def __init__(self, root: os.PathLike) -> None:
        self.root = Path(root) / "v1"
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.errors = 0

    # -- paths -----------------------------------------------------------------
    def _path(self, namespace: str, key: object) -> Path:
        digest = _digest(key)
        return self.root / namespace / digest[:2] / f"{digest}.pkl"

    # -- generic protocol ------------------------------------------------------
    def get(self, namespace: str, key: object) -> Optional[Any]:
        """The stored payload, or ``None`` on a miss (or unreadable entry)."""
        path = self._path(namespace, key)
        try:
            blob = path.read_bytes()
        except OSError:
            with self._lock:
                self.misses += 1
            return None
        try:
            # The failpoint targets the *rebuildable* namespaces, where
            # the contract is "degrade to a miss".  Table spills are
            # primary storage for evicted shards — corruption there is
            # a real data loss the catalog surfaces as a coded error.
            if namespace != TABLES_NAMESPACE and faults.should_fire(
                "diskcache.corrupt_read"
            ):
                raise ValueError("injected diskcache.corrupt_read")
            schema, stored_key, payload = pickle.loads(blob)
            if schema != DISK_CACHE_SCHEMA or stored_key != key:
                raise ValueError("schema or key mismatch")
        except Exception:
            # Torn write, digest collision or stale schema: degrade to a
            # miss and drop the entry so it is rebuilt cleanly.
            with self._lock:
                self.errors += 1
                self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        with self._lock:
            self.hits += 1
        return payload

    def put(self, namespace: str, key: object, payload: Any) -> None:
        """Atomically persist ``payload`` under ``key``.

        Serialisation failures are swallowed (counted in ``errors``):
        the disk cache is an accelerator, never a correctness dependency.
        """
        path = self._path(namespace, key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            blob = pickle.dumps(
                (DISK_CACHE_SCHEMA, key, payload), protocol=pickle.HIGHEST_PROTOCOL
            )
            handle, temp_name = tempfile.mkstemp(
                dir=path.parent, prefix=path.name, suffix=".tmp"
            )
            try:
                with os.fdopen(handle, "wb") as stream:
                    stream.write(blob)
                os.replace(temp_name, path)
            except BaseException:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass
                raise
        except Exception:
            with self._lock:
                self.errors += 1
            return
        with self._lock:
            self.writes += 1

    # -- typed wrappers --------------------------------------------------------
    def get_candidates(self, fingerprint_digest: str, question: str, signature: str):
        return self.get(CANDIDATES_NAMESPACE, (fingerprint_digest, question, signature))

    def put_candidates(
        self, fingerprint_digest: str, question: str, signature: str, payload: Any
    ) -> None:
        self.put(CANDIDATES_NAMESPACE, (fingerprint_digest, question, signature), payload)

    def get_execution_bundle(self, fingerprint_digest: str) -> Optional[Dict[str, Any]]:
        return self.get(EXECUTION_NAMESPACE, (fingerprint_digest,))

    def put_execution_bundle(self, fingerprint_digest: str, bundle: Dict[str, Any]) -> None:
        self.put(EXECUTION_NAMESPACE, (fingerprint_digest,), bundle)

    def remove(self, namespace: str, key: object) -> bool:
        """Unlink one entry; returns whether a file was removed."""
        path = self._path(namespace, key)
        try:
            path.unlink()
        except OSError:
            return False
        return True

    def get_table(self, fingerprint_digest: str) -> Optional[Any]:
        """An evicted catalog shard's table, or ``None`` when never evicted."""
        return self.get(TABLES_NAMESPACE, (fingerprint_digest,))

    def put_table(self, fingerprint_digest: str, table: Any) -> None:
        """Persist a catalog shard's table ahead of dropping it from memory.

        The pickle preserves typed cells exactly, so the rehydrated
        table recomputes the same content fingerprint and re-joins every
        content-addressed cache it left.
        """
        self.put(TABLES_NAMESPACE, (fingerprint_digest,), table)

    def remove_table(self, fingerprint_digest: str) -> bool:
        """Unlink a retired lineage ancestor's table blob.

        Only :meth:`TableCatalog.prune_lineage` calls this, and only for
        digests nothing can resolve any more — live and pinned shards
        keep their blobs (primary storage for evicted shards).
        """
        return self.remove(TABLES_NAMESPACE, (fingerprint_digest,))

    # -- introspection ---------------------------------------------------------
    def __len__(self) -> int:
        """Number of entries currently on disk (walks the tree)."""
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.rglob("*.pkl"))

    def stats(self) -> Dict[str, int]:
        """Counters in the shape of ``LRUCache.stats()`` plus write/error."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "writes": self.writes,
                "errors": self.errors,
            }

    @staticmethod
    def empty_stats() -> Dict[str, int]:
        """The all-zero stats block reported when no disk cache is configured."""
        return {"hits": 0, "misses": 0, "writes": 0, "errors": 0}

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"DiskCache({self.root}, hits={self.hits}, misses={self.misses})"
