"""True parallel candidate generation on a process pool.

The thread pool of :class:`~repro.perf.batch.BatchParser` is GIL-bound:
candidate generation is pure Python, so threads interleave instead of
running in parallel and memoization — not the pool — carries the win.
This backend breaks the GIL ceiling with worker *processes*:

* **Tables ship once per worker, never per task.**  The driver collects
  the distinct tables of the batch (by content fingerprint) and sends
  them through the pool initializer; each worker keeps a
  fingerprint-addressed registry in module state.  Work units on the
  wire are just ``(fingerprint digest, question, k)`` triples.
* **Work units are deduplicated.**  Candidate generation is
  deterministic and weight-independent, so duplicate
  ``(fingerprint, question)`` pairs in a batch are parsed once and the
  result is fanned back out to every position — the process-pool
  analogue of the thread pool's shared candidate cache.
* **Results stay bit-identical.**  Workers rank with the driver's model
  weights under the driver's config, so the report is indistinguishable
  from a sequential loop (locked in by ``tests/test_perf_batch.py``).

Under the ``fork`` start method workers additionally inherit the
driver's pre-built per-table state (lexicons, grammars, column indexes,
schema profiles) by copy-on-write, and run with their garbage collector
frozen so a child GC pass never faults the inherited parent heap.
Worker caches diverge from there and die with the pool; configure
``ParserConfig.disk_cache_dir`` to share a content-addressed
:class:`~repro.perf.diskcache.DiskCache` between workers and across
runs — with a warm store, workers skip cold parsing entirely.

A note on pool sizing: workers are capped at the cores the process may
actually use (``sched_getaffinity``) — a CPU-bound pool gains nothing
from oversubscription, and on a single-core host the backend degrades
gracefully to one worker whose win comes from work-unit deduplication
rather than parallelism.
"""

from __future__ import annotations

import dataclasses
import gc
import multiprocessing
import os
import pickle
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from ..parser.candidates import ParseOutput, ParserConfig, SemanticParser
from ..parser.model import LogLinearModel
from ..tables.index import table_index
from ..tables.schema import table_schema
from ..tables.table import Table

#: One unit of cross-process work: (fingerprint digest, question, top-k).
WorkUnit = Tuple[str, str, Optional[int]]

# Module state of a *worker* process, populated by the pool initializer.
_WORKER_PARSER: Optional[SemanticParser] = None
_WORKER_TABLES: Dict[str, Table] = {}

#: Set in the *driver* process just before the pool forks.  Under the
#: ``fork`` start method the workers inherit this module global — and with
#: it the driver's warm per-table caches (lexicons, grammars, indexes) —
#: by copy-on-write, with zero serialisation.  Under ``spawn`` the fresh
#: interpreter sees ``None`` and the initializer builds a parser from the
#: shipped weights/config instead.
_FORK_PARSER: Optional[SemanticParser] = None

#: Guards every set/clear of :data:`_FORK_PARSER`.  Two concurrent
#: batches used to clobber each other's global — the ``finally`` of one
#: nulled the other's parser mid-fork, so its workers forked seeing
#: ``None`` and silently rebuilt cold parsers (or raced the assignment).
#: The lock is held from setting the global until every fork that must
#: inherit it has happened, and is shared with the persistent
#: :class:`~repro.perf.pool.ProcessWorkerPool` for the same reason.
_FORK_LOCK = threading.Lock()


def _available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _init_worker(tables_blob: bytes, weights: Dict[str, float], config: ParserConfig) -> None:
    """Pool initializer: build the fingerprint-addressed table registry.

    Runs once per worker process — the only time table data crosses the
    process boundary.  The worker's garbage collector is frozen and
    disabled first: workers are short-lived, the workload allocates no
    reference cycles, and under the ``fork`` start method a child GC pass
    would touch (and therefore copy-on-write) the entire inherited parent
    heap for nothing.
    """
    global _WORKER_PARSER, _WORKER_TABLES
    gc.freeze()
    gc.disable()
    tables: Sequence[Table] = pickle.loads(tables_blob)
    _WORKER_TABLES = {table.fingerprint.digest: table for table in tables}
    if _FORK_PARSER is not None:
        _WORKER_PARSER = _FORK_PARSER
        _refresh_inherited_locks(_WORKER_PARSER)
    else:
        model = LogLinearModel()
        model.weights = dict(weights)
        _WORKER_PARSER = SemanticParser(model=model, config=config)


def _refresh_inherited_locks(parser: SemanticParser) -> None:
    """Replace every lock the child inherited through fork.

    ``fork`` copies locks in whatever state another driver thread held
    them at fork time; a lock copied *held* stays held forever in the
    child (its owner does not exist here) and the first cache access
    would deadlock.  The child is single-threaded at this point, so
    swapping in fresh locks is safe.  Reaches into sibling-module
    internals deliberately — this is fork-inheritance plumbing, not API.
    """
    from ..tables import index as index_module
    from ..tables import schema as schema_module

    for cache in (parser._lexicons, parser._grammars, parser._candidate_cache):
        cache._lock = threading.RLock()
    parser._execution_cache._lru._lock = threading.RLock()
    index_module._INDEX_REGISTRY._lock = threading.RLock()
    schema_module._PROFILE_CACHE._lock = threading.RLock()
    if parser._disk_cache is not None:
        parser._disk_cache._lock = threading.Lock()


def _parse_units(units: Sequence[WorkUnit]) -> List[Tuple[WorkUnit, ParseOutput, float]]:
    """Parse a group of work units against the worker's table registry.

    A group holds (mostly) units of one table, so per-table state —
    lexicon, grammar, column index — is built at most once per group
    instead of once per worker per table.
    """
    results = []
    for unit in units:
        digest, question, k = unit
        table = _WORKER_TABLES[digest]
        started = time.perf_counter()
        parse = _WORKER_PARSER.parse(question, table, k=k)
        elapsed = time.perf_counter() - started
        # Strip the table from the wire format: the driver re-attaches its
        # own table object, and candidates only reference cells, not tables.
        parse.table = None
        results.append((unit, parse, elapsed))
    return results


class ProcessPoolBackend:
    """Drives a batch of ``(question, table)`` items through worker processes.

    Created per batch (the worker registry is the batch's table set); the
    pool forks lazily on :meth:`parse_all` and is torn down with it.
    """

    def __init__(self, parser: SemanticParser, max_workers: int = 4) -> None:
        if max_workers < 1:
            raise ValueError(f"ProcessPoolBackend needs max_workers >= 1, got {max_workers}")
        self.parser = parser
        self.max_workers = max_workers

    def parse_all(self, items: Sequence) -> List[Tuple[ParseOutput, float]]:
        """Index-aligned ``(parse, seconds)`` pairs for ``items``.

        ``items`` are :class:`~repro.perf.batch.BatchItem` instances.
        Duplicated work units are parsed once; every duplicate position
        receives the shared parse and its worker-measured time.

        Scheduling: units are grouped by table and each group is one
        task, largest first — per-table state is never rebuilt across
        workers, and a table's questions land on the worker that already
        paid for its grammar.  Under the ``fork`` start method the driver
        additionally pre-builds each table's lexicon, grammar, index and
        schema *before* forking, so every worker inherits them warm by
        copy-on-write instead of rebuilding its own.
        """
        tables: Dict[str, Table] = {}
        groups: Dict[str, List[WorkUnit]] = {}
        seen: set = set()
        for item in items:
            digest = item.table.fingerprint.digest
            tables.setdefault(digest, item.table)
            unit: WorkUnit = (digest, item.question, item.k)
            if unit not in seen:
                seen.add(unit)
                groups.setdefault(digest, []).append(unit)

        group_lists = sorted(groups.values(), key=len, reverse=True)
        # Never fork more workers than cores: a CPU-bound process pool
        # gains nothing from oversubscription and each extra fork pays its
        # own copy-on-write faults over the parent heap.
        budget = min(self.max_workers, _available_cpus()) or 1
        # A batch over few tables (one, typically, via ask_many) would
        # otherwise collapse to one group and zero parallelism: split the
        # largest groups until every budgeted worker has work.  Under fork
        # the split is free — per-table state is pre-built by the driver
        # and inherited — and under spawn it costs one duplicate grammar
        # build per extra worker, still a win for multi-question batches.
        while group_lists and len(group_lists) < budget and len(group_lists[0]) > 1:
            largest = group_lists.pop(0)
            half = (len(largest) + 1) // 2
            group_lists.extend([largest[:half], largest[half:]])
            group_lists.sort(key=len, reverse=True)
        tables_blob = pickle.dumps(
            list(tables.values()), protocol=pickle.HIGHEST_PROTOCOL
        )
        workers = min(budget, len(group_lists)) or 1
        # _FORK_PARSER is module state: hold the lock from setting it
        # until every submission (and with it every worker fork — the
        # executor spawns processes during submit) has happened, then
        # clear it *inside* the lock.  Two concurrent batches serialise
        # their fork windows instead of nulling each other's parser
        # mid-fork; result collection overlaps freely outside the lock.
        pool = None
        try:
            with _FORK_LOCK:
                global _FORK_PARSER
                fork_start = multiprocessing.get_start_method() == "fork"
                try:
                    if fork_start:
                        self._prewarm(tables.values())
                        _FORK_PARSER = self.parser
                    pool = ProcessPoolExecutor(
                        max_workers=workers,
                        initializer=_init_worker,
                        initargs=(
                            tables_blob,
                            self.parser.model.weights,
                            self.parser.config,
                        ),
                    )
                    futures = [
                        pool.submit(_parse_units, group) for group in group_lists
                    ]
                finally:
                    _FORK_PARSER = None
            parsed = {
                unit: (parse, seconds)
                for future in futures
                for unit, parse, seconds in future.result()
            }
        finally:
            if pool is not None:
                pool.shutdown(wait=True)

        results: List[Tuple[ParseOutput, float]] = []
        for item in items:
            unit = (item.table.fingerprint.digest, item.question, item.k)
            parse, seconds = parsed[unit]
            results.append(
                (dataclasses.replace(parse, table=item.table), seconds)
            )
        return results

    def _prewarm(self, batch_tables) -> None:
        """Build per-table state in the driver so forked workers inherit it.

        Lexicon and grammar live in the driver parser's content-addressed
        LRUs; the column index and schema profiles live in process-wide
        registries.  All of it is read-mostly after construction, which is
        exactly what fork's copy-on-write shares for free.
        """
        for table in batch_tables:
            self.parser._lexicon(table)
            self.parser._grammar(table)
            if self.parser.config.index_tables:
                table_index(table)
                table_schema(table)
