"""The cross-table join bench: set-router recall and the SQL-oracle gate.

Over the multi-table question tier
(:func:`~repro.dataset.join_corpus.build_join_corpus` — fact/dimension
shard pairs with string-typed join keys, questions whose anchor entity
and target column live in *different* shards) this harness reports:

* **join recall@k** — for each gold-labeled question, whether the
  :class:`~repro.retrieval.router.ShardSetRouter` proposes the exact
  gold ``{fact, dimension}`` pair among its top 1/5 shard sets (an empty
  proposal list counts as a miss);
* **compose** — whether the
  :func:`~repro.compose.compose.compose_pair` baseline produces an
  answer on every gold pair, and whether that answer matches the
  generator's own join (computed independently of the executor);
* **oracle** — the answer-identity gate: every composed query is
  re-executed through the translated two-table JOIN SQL
  (:func:`~repro.sql.equivalence.check_composed_equivalence`) and any
  divergence fails the bench — ``repro bench-join`` exits 1;
* **timings** — p50/p95 of set-routing and of plan+validate+execute
  composition.

The payload becomes the committed ``BENCH_join.json`` (schema
``repro-bench-join-v1``, validated by ``scripts/validate_wire.py``);
``repro bench-join`` and the CI ``join-smoke`` job run the same harness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..compose import compose_pair
from ..dataset.join_corpus import JoinCorpus, JoinCorpusConfig, build_join_corpus
from ..dcs.sexpr import from_sexpr
from ..sql.equivalence import check_composed_equivalence
from ..tables.catalog import TableCatalog


def _latency_summary(series: Sequence[float]) -> Dict[str, float]:
    # Imported lazily: repro.serving imports repro.interface, which
    # imports repro.perf at package init (the same cycle churn avoids).
    from ..serving.bench import latency_summary

    return latency_summary(series)


#: The recall cutoffs the join bench reports (pairs, so no @10 tier).
JOIN_RECALL_KS = (1, 5)


@dataclass
class JoinReport:
    """The harness output: recall, composition counts, the oracle verdict."""

    pairs: int
    shards: int
    questions: int
    max_proposals: int
    recall: Dict[int, float] = field(default_factory=dict)
    recall_hits: Dict[int, int] = field(default_factory=dict)
    no_proposals: int = 0
    compose_attempted: int = 0
    composed: int = 0
    answer_matches: int = 0
    oracle_checked: int = 0
    oracle_divergent: int = 0
    #: One human-readable line per divergence/failure, for the CLI.
    failures: List[str] = field(default_factory=list)
    digest_collisions_repaired: int = 0
    routing_seconds: List[float] = field(default_factory=list)
    compose_seconds: List[float] = field(default_factory=list)

    @property
    def gate_ok(self) -> bool:
        """The bench gate: every gold pair composes and the oracle agrees.

        A pair that fails to compose cannot be oracle-checked, so
        composition failures fail the gate too — otherwise a regression
        that silently stops composing would *pass* the identity gate.
        """
        return (
            self.composed > 0
            and self.composed == self.compose_attempted
            and self.oracle_divergent == 0
        )

    def rows(self) -> List[Tuple[str, str]]:
        """CLI summary rows: metric name, value."""
        out: List[Tuple[str, str]] = [
            ("pairs", str(self.pairs)),
            ("shards", str(self.shards)),
            ("questions", str(self.questions)),
        ]
        for k in JOIN_RECALL_KS:
            out.append((f"join recall@{k}", f"{self.recall.get(k, 0.0):.3f}"))
        out.extend(
            [
                ("no proposals", str(self.no_proposals)),
                (
                    "composed",
                    f"{self.composed}/{self.compose_attempted} "
                    f"({self.answer_matches} match gold)",
                ),
                (
                    "oracle",
                    f"{'ok' if self.oracle_divergent == 0 else 'DIVERGED'} "
                    f"({self.oracle_checked} checked, "
                    f"{self.oracle_divergent} divergent)",
                ),
            ]
        )
        routing = _latency_summary(self.routing_seconds)
        compose = _latency_summary(self.compose_seconds)
        out.append(
            (
                "set-routing latency",
                f"p50 {routing['p50_ms']}ms, p95 {routing['p95_ms']}ms",
            )
        )
        out.append(
            (
                "compose latency",
                f"p50 {compose['p50_ms']}ms, p95 {compose['p95_ms']}ms",
            )
        )
        return out

    def to_payload(self) -> Dict[str, object]:
        """The ``BENCH_join.json`` shape (``repro-bench-join-v1``).

        Structural facts (corpus size, recall counts, composition and
        oracle verdicts) are run-stable for a fixed seed and scale;
        everything wall-clock-derived lives under ``timings``, the same
        artifact-diff contract as the other committed bench payloads.
        """
        routing = _latency_summary(self.routing_seconds)
        compose = _latency_summary(self.compose_seconds)
        return {
            "schema": "repro-bench-join-v1",
            "pairs": self.pairs,
            "shards": self.shards,
            "questions": self.questions,
            "max_proposals": self.max_proposals,
            "recall": {
                str(k): round(self.recall.get(k, 0.0), 4)
                for k in JOIN_RECALL_KS
            },
            "recall_hits": {
                str(k): self.recall_hits.get(k, 0) for k in JOIN_RECALL_KS
            },
            "no_proposals": self.no_proposals,
            "compose": {
                "attempted": self.compose_attempted,
                "composed": self.composed,
                "answer_matches": self.answer_matches,
            },
            "oracle": {
                "checked": self.oracle_checked,
                "divergent": self.oracle_divergent,
                "ok": self.gate_ok,
            },
            "corpus": {
                "digest_collisions_repaired": self.digest_collisions_repaired,
            },
            "timings": {
                "set_routing": {
                    "p50_ms": routing["p50_ms"],
                    "p95_ms": routing["p95_ms"],
                },
                "compose": {
                    "p50_ms": compose["p50_ms"],
                    "p95_ms": compose["p95_ms"],
                },
            },
        }


def run_join_bench(
    config: Optional[JoinCorpusConfig] = None,
    max_proposals: int = 8,
    corpus: Optional[JoinCorpus] = None,
) -> JoinReport:
    """Run the join harness; see the module docstring for the plan.

    ``max_proposals`` widens the set router past its serving default so
    recall@5 measures the ranking, not the truncation.  ``corpus``
    injects a pre-built corpus (the CI smoke path reuses one across
    assertions).
    """
    if corpus is None:
        corpus = build_join_corpus(config or JoinCorpusConfig())
    catalog = TableCatalog()
    catalog.register_many(corpus.tables, names=corpus.names)
    by_digest = {table.fingerprint.digest: table for table in corpus.tables}

    report = JoinReport(
        pairs=len(corpus.pairs),
        shards=len(corpus.tables),
        questions=len(corpus.questions),
        max_proposals=max_proposals,
        recall_hits={k: 0 for k in JOIN_RECALL_KS},
        digest_collisions_repaired=corpus.digest_collisions_repaired,
    )

    for probe in corpus.questions:
        # -- join recall@k over the proposed shard sets ------------------
        started = time.perf_counter()
        sets = catalog.routing_sets(
            probe.question, max_proposals=max_proposals
        )
        report.routing_seconds.append(time.perf_counter() - started)
        if not sets.proposals:
            report.no_proposals += 1
        position = next(
            (
                rank
                for rank, proposal in enumerate(sets.proposals)
                if frozenset(proposal.digests) == probe.gold_digests
            ),
            None,
        )
        for k in JOIN_RECALL_KS:
            if position is not None and position < k:
                report.recall_hits[k] += 1

        # -- composition over the gold pair ------------------------------
        primary = by_digest[probe.primary_digest]
        secondary = by_digest[probe.secondary_digest]
        report.compose_attempted += 1
        answer = compose_pair(probe.question, primary, secondary)
        if answer is None:
            report.failures.append(
                f"no composition: {probe.question!r} "
                f"({probe.primary_name} + {probe.secondary_name})"
            )
            continue
        report.composed += 1
        report.compose_seconds.append(answer.seconds)
        if sorted(answer.answer) == sorted(probe.answer):
            report.answer_matches += 1
        else:
            report.failures.append(
                f"gold mismatch: {probe.question!r} "
                f"got {list(answer.answer)} want {list(probe.answer)}"
            )

        # -- the composed-vs-SQL answer-identity oracle ------------------
        verdict = check_composed_equivalence(
            from_sexpr(answer.sexpr), primary, secondary
        )
        report.oracle_checked += 1
        if not verdict.equivalent:
            report.oracle_divergent += 1
            report.failures.append(
                f"oracle divergence: {probe.question!r} — {verdict.detail}"
            )

    questions = report.questions
    report.recall = {
        k: (report.recall_hits[k] / questions if questions else 0.0)
        for k in JOIN_RECALL_KS
    }
    return report
