"""Table 9 — the effect of user feedback on parser correctness.

Paper (averaged over three train/dev splits of the 2,068 collected
annotations):

    train ex.   annotations   correctness   MRR
    1650        1650          49.8%         0.586
    1650        0             41.8%         0.499
    11000       1650          51.6%         0.60
    11000       0             49.5%         0.570

i.e. (1) training on annotated question-query pairs beats weak answer-only
supervision on the same questions by ~8 points, and (2) mixing the
annotations into the full training set still helps, by a smaller margin.

The bench reproduces the protocol end to end: the baseline parser's
explanations are shown to simulated workers on training questions, the
majority-vote annotations are collected, and two parsers per scenario are
trained (with / without annotations) and evaluated on held-out dev
questions, averaged over repeated splits.  Asserted shape: annotations
improve correctness in the annotated-only scenario, and do not hurt in the
mixed scenario.
"""

from __future__ import annotations

import pytest

from repro.dataset import repeated_splits
from repro.interface import RetrainingConfig, RetrainingPipeline
from repro.users import FeedbackConfig

from _bench_utils import K, print_table, scaled


@pytest.mark.benchmark(group="table9")
def test_table9_training_on_feedback(benchmark, baseline_parser, bench_split):
    annotated_pool_size = scaled(80, minimum=30)
    dev_size = scaled(40, minimum=15)
    extra_weak = scaled(60, minimum=20)
    repetitions = 2

    def run():
        pipeline = RetrainingPipeline(
            baseline_parser,
            RetrainingConfig(epochs=3, k=K, feedback=FeedbackConfig(seed=99)),
        )
        # Collect annotations once, from the baseline parser's explanations.
        pool = bench_split.train.examples[: annotated_pool_size + dev_size]
        feedback = pipeline.collect_feedback(pool)
        annotated_examples = feedback.training_examples

        from repro.dataset.dataset import Dataset

        pool_dataset = Dataset(examples=list(pool))
        rows = []
        aggregates = {"ann_only": [], "weak_only": [], "mixed_ann": [], "mixed_weak": []}
        for split_index, (train_part, dev_part) in enumerate(
            repeated_splits(pool_dataset, annotated_pool_size, repetitions=repetitions, seed=5)
        ):
            train_ids = {example.example_id for example in train_part.examples}
            dev_examples = [
                example.to_evaluation_example() for example in dev_part.examples[:dev_size]
            ]
            annotated_training = [
                training
                for example, training in zip(pool, annotated_examples)
                if example.example_id in train_ids
            ]
            weak_extra = bench_split.train.training_examples(annotated=False)[
                len(pool): len(pool) + extra_weak
            ]

            # Scenario 1: train only on the annotated pool.
            comparison_small = pipeline.compare(
                annotated_training=annotated_training,
                unannotated_training=[],
                dev_examples=dev_examples,
            )
            # Scenario 2: annotated pool mixed into a larger weak training set.
            comparison_full = pipeline.compare(
                annotated_training=annotated_training,
                unannotated_training=weak_extra,
                dev_examples=dev_examples,
            )
            aggregates["ann_only"].append(comparison_small.with_annotations)
            aggregates["weak_only"].append(comparison_small.without_annotations)
            aggregates["mixed_ann"].append(comparison_full.with_annotations)
            aggregates["mixed_weak"].append(comparison_full.without_annotations)
        return feedback, aggregates, len(annotated_training), extra_weak

    feedback, aggregates, annotated_count, extra_weak = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    def mean(reports, attribute):
        return sum(getattr(report, attribute) for report in reports) / len(reports)

    rows = [
        [annotated_count, annotated_count,
         f"{mean(aggregates['ann_only'], 'correctness'):.1%}",
         f"{mean(aggregates['ann_only'], 'mrr'):.3f}"],
        [annotated_count, 0,
         f"{mean(aggregates['weak_only'], 'correctness'):.1%}",
         f"{mean(aggregates['weak_only'], 'mrr'):.3f}"],
        [annotated_count + extra_weak, annotated_count,
         f"{mean(aggregates['mixed_ann'], 'correctness'):.1%}",
         f"{mean(aggregates['mixed_ann'], 'mrr'):.3f}"],
        [annotated_count + extra_weak, 0,
         f"{mean(aggregates['mixed_weak'], 'correctness'):.1%}",
         f"{mean(aggregates['mixed_weak'], 'mrr'):.3f}"],
    ]
    print_table(
        "Table 9: Effect of user feedback on correctness "
        "(paper: 49.8/41.8 and 51.6/49.5, MRR 0.586/0.499 and 0.60/0.570)",
        ["train ex.", "annotations", "correctness", "MRR"],
        rows,
    )
    print(f"annotations collected from simulated workers: {feedback.annotated_count} "
          f"({feedback.annotation_rate:.0%} of shown questions)")

    # Shape: annotated training beats weak-only training on the annotated pool.
    assert mean(aggregates["ann_only"], "correctness") >= mean(
        aggregates["weak_only"], "correctness"
    )
    assert mean(aggregates["ann_only"], "mrr") >= mean(aggregates["weak_only"], "mrr") - 0.02
    # Mixing annotations into a larger weak set must not hurt materially.
    assert mean(aggregates["mixed_ann"], "correctness") >= mean(
        aggregates["mixed_weak"], "correctness"
    ) - 0.05
