"""Figures 1, 8 and 9 — candidate-explanation walk-throughs.

* Figure 1: the Olympics question "Greece held its last Olympics in what
  year?" explained by utterance and provenance highlights.
* Figure 8: two candidates for "What was the last year the team was a part
  of the USL A-League?" that return the same answer, only one of which is a
  correct translation.
* Figure 9: three candidates for "How many more ships were wrecked in lake
  Huron than in Erie?" where the highlights immediately reveal the correct
  one.

The bench regenerates the three walk-throughs and asserts the facts the
paper uses them to illustrate.
"""

from __future__ import annotations

import pytest

from repro.core import explain
from repro.dcs import SuperlativeKind, SuperlativeRecords, builder as q, execute
from repro.parser import queries_equivalent
from repro.tables import Table

from _bench_utils import print_table


def olympics_table():
    return Table(
        columns=["Year", "Country", "City"],
        rows=[
            [1896, "Greece", "Athens"],
            [1900, "France", "Paris"],
            [2004, "Greece", "Athens"],
            [2008, "China", "Beijing"],
            [2012, "UK", "London"],
            [2016, "Brazil", "Rio de Janeiro"],
        ],
        name="olympics",
    )


def seasons_table():
    # Attendance is arranged so that the spurious candidate of Figure 8
    # (minimum Year among the rows with the highest Attendance) also lands
    # on 2004, exactly like the paper's Open-Cup-based example.
    return Table(
        columns=["Year", "League", "Attendance", "Open Cup"],
        rows=[
            [2002, "USL A-League", 5260, "Did not qualify"],
            [2003, "USL A-League", 5871, "Did not qualify"],
            [2004, "USL A-League", 6628, "4th Round"],
            [2005, "USL First Division", 6028, "4th Round"],
            [2006, "USL First Division", 5575, "3rd Round"],
        ],
        name="seasons",
    )


def shipwrecks_table():
    return Table(
        columns=["Ship", "Vessel", "Lake", "Lives lost"],
        rows=[
            ["Argus", "Steamer", "Lake Huron", 25],
            ["Hydrus", "Steamer", "Lake Huron", 28],
            ["Plymouth", "Barge", "Lake Michigan", 7],
            ["Issac M. Scott", "Steamer", "Lake Huron", 28],
            ["Henry B. Smith", "Steamer", "Lake Superior", 23],
            ["Lightship No. 82", "Lightship", "Lake Erie", 6],
            ["Wexford", "Steamer", "Lake Huron", 17],
            ["Leafield", "Steamer", "Lake Superior", 18],
        ],
        name="shipwrecks",
    )


def run_walkthroughs():
    outputs = {}

    # Figure 1
    table = olympics_table()
    figure1 = q.max_(q.column_values("Year", q.column_records("Country", "Greece")))
    outputs["figure1"] = explain(figure1, table)

    # Figure 8
    seasons = seasons_table()
    correct = q.max_(q.column_values("Year", q.column_records("League", "USL A-League")))
    spurious = q.min_(q.column_values("Year", q.argmax_records("Attendance")))
    outputs["figure8"] = (
        explain(correct, seasons),
        explain(spurious, seasons),
        execute(correct, seasons).answer_strings(),
        execute(spurious, seasons).answer_strings(),
        queries_equivalent(spurious, correct, seasons, perturbations=4),
    )

    # Figure 9
    ships = shipwrecks_table()
    candidates = [
        q.count_difference("Lake", "Lake Huron", "Lake Erie"),
        q.count_difference("Lake", "Lake Huron", "Lake Superior"),
        q.count(
            SuperlativeRecords(
                SuperlativeKind.ARGMAX,
                "Lives lost",
                q.column_records("Lake", "Lake Huron"),
            )
        ),
    ]
    outputs["figure9"] = [explain(candidate, ships) for candidate in candidates]
    return outputs


@pytest.mark.benchmark(group="figures")
def test_figure_walkthroughs(benchmark):
    outputs = benchmark.pedantic(run_walkthroughs, rounds=1, iterations=1)

    figure1 = outputs["figure1"]
    print("\n=== Figure 1: Greece held its last Olympics in what year? ===")
    print(figure1.as_text())
    assert figure1.answer == ("2004",)
    assert figure1.highlighted.header_label("Year") == "MAX(Year)"

    correct, spurious, correct_answer, spurious_answer, equivalent = outputs["figure8"]
    print("\n=== Figure 8: same answer, different queries ===")
    print("candidate 1:", correct.utterance, "->", correct_answer)
    print("candidate 2:", spurious.utterance, "->", spurious_answer)
    # Both candidates answer 2004 on this table, yet they are not equivalent.
    assert correct_answer == spurious_answer == ("2004",)
    assert not equivalent

    print("\n=== Figure 9: how many more ships were wrecked in lake Huron than in Erie? ===")
    rows = []
    for index, explanation in enumerate(outputs["figure9"], start=1):
        rows.append([index, explanation.utterance[:80], ", ".join(explanation.answer)])
        print(f"--- candidate {index} ---")
        print(explanation.as_text())
    print_table("Figure 9 candidates", ["#", "utterance", "answer"], rows)
    first, second, third = outputs["figure9"]
    # The correct candidate compares Huron and Erie occurrences: 4 - 1 = 3.
    assert first.answer == ("3",)
    # The second compares Huron and Superior instead and differs.
    assert second.answer != first.answer
    # Highlights of the first candidate frame/color cells in the Lake column only.
    assert all(cell.column == "Lake" for cell in first.highlighted.colored_cells)
