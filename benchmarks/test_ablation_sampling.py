"""Ablation — highlight sampling on large tables (Section 5.3).

Showing a full highlight on a table with thousands of rows is impractical;
the paper's sampler shows at most a handful of rows while still covering
every provenance stratum.  The bench measures, for growing table sizes,
how many cells a full highlight would display versus the sampled one, and
benchmarks the cost of computing the sample.
"""

from __future__ import annotations

import pytest

from repro.core import HighlightLevel, Highlighter, sample_highlights
from repro.dcs import builder as q
from repro.tables import Table

from _bench_utils import print_table


def growth_table(rows):
    countries = ["Madagascar", "Burkina Faso", "Kenya", "Ghana", "Togo", "Benin"]
    data = []
    for index in range(rows):
        data.append(
            [index + 1, countries[index % len(countries)], 1950 + (index % 65),
             round(0.5 + ((index * 13) % 37) * 0.1, 3)]
        )
    return Table(columns=["Row", "Country", "Year", "Growth Rate"], rows=data, name=f"growth-{rows}")


SIZES = [50, 200, 1000]


def run_sweep():
    query = q.max_(
        q.column_values("Growth Rate", q.column_records("Country", "Madagascar"))
    )
    rows = []
    for size in SIZES:
        table = growth_table(size)
        highlighted = Highlighter(table).highlight(query, output=True)
        full_cells = sum(
            1 for level in highlighted.levels.values() if level != HighlightLevel.NONE
        )
        sample = sample_highlights(query, table, seed=1)
        sampled_cells = sum(
            1
            for level in sample.highlighted.levels.values()
            if level != HighlightLevel.NONE
        )
        rows.append((size, full_cells, sample.sample_size, sampled_cells))
    return rows


@pytest.mark.benchmark(group="ablations")
def test_ablation_highlight_sampling(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    print_table(
        "Ablation: full highlight vs. sampled highlight (Section 5.3)",
        ["table rows", "highlighted cells (full)", "sampled rows", "highlighted cells (sampled)"],
        [list(row) for row in rows],
    )

    for size, full_cells, sample_rows, sampled_cells in rows:
        # The full highlight grows linearly with the table...
        assert full_cells >= size
        # ... the sample does not.
        assert sample_rows <= 3
        assert sampled_cells <= 4 * sample_rows
    largest = rows[-1]
    assert largest[3] < largest[1] / 50
