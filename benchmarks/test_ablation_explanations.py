"""Ablation — what the explanation modality buys.

The paper argues (Section 7.2) that non-experts simply cannot judge raw
lambda DCS, that NL utterances make the task possible, and that adding
provenance highlights keeps accuracy while drastically cutting work time.

The bench runs the same worker pool through the same questions under the
three conditions (formal queries only, utterances only, utterances +
highlights) and reports question success, user correctness and average
work time per condition.
"""

from __future__ import annotations

import statistics

import pytest

from repro.users import ExplanationMode, StudyConfig, UserStudy, worker_pool

from _bench_utils import K, print_table, scaled


MODES = [
    ExplanationMode.FORMAL_ONLY,
    ExplanationMode.UTTERANCES_ONLY,
    ExplanationMode.UTTERANCES_AND_HIGHLIGHTS,
]


@pytest.mark.benchmark(group="ablations")
def test_ablation_explanation_modalities(benchmark, baseline_parser, test_examples):
    examples = test_examples[: scaled(40, minimum=16)]
    workers_per_group = 3
    questions_per_worker = max(1, len(examples) // workers_per_group)

    def run():
        results = {}
        for index, mode in enumerate(MODES):
            study = UserStudy(
                baseline_parser,
                StudyConfig(k=K, questions_per_worker=questions_per_worker, seed=700 + index),
            )
            workers = worker_pool(workers_per_group, mode=mode, seed=700 + index)
            results[mode] = study.run(examples, workers)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for mode in MODES:
        result = results[mode]
        minutes = list(result.worker_minutes().values())
        rows.append(
            [
                mode.value,
                f"{result.question_success_rate:.1%}",
                f"{result.user_correctness:.1%}",
                f"{result.hybrid_correctness:.1%}",
                f"{statistics.mean(minutes):.1f}m" if minutes else "-",
            ]
        )
    print_table(
        "Ablation: explanation modality (success / user corr. / hybrid corr. / avg time)",
        ["modality", "success", "users", "hybrid", "avg time"],
        rows,
    )

    formal = results[ExplanationMode.FORMAL_ONLY]
    utterances = results[ExplanationMode.UTTERANCES_ONLY]
    both = results[ExplanationMode.UTTERANCES_AND_HIGHLIGHTS]

    # Shape: any NL explanation beats raw lambda DCS on judgment success.
    assert utterances.question_success_rate > formal.question_success_rate
    assert both.question_success_rate > formal.question_success_rate
    # Highlights do not hurt accuracy...
    assert both.question_success_rate >= utterances.question_success_rate - 0.1
    # ... and save time.
    both_minutes = statistics.mean(list(both.worker_minutes().values()))
    utterance_minutes = statistics.mean(list(utterances.worker_minutes().values()))
    assert both_minutes < utterance_minutes
