"""Serving bench — sequential vs concurrent async sessions (ISSUE 3).

The paper's deployment is an interactive service: many users, concurrent
sessions, many tables.  This bench drives the held-out workload through
the :class:`~repro.tables.catalog.TableCatalog` +
:class:`~repro.serving.AsyncServer` stack three ways —

* ``sequential``   — one ``catalog.ask`` loop (the reference),
* ``async``        — the workload split into concurrent sessions over
  the micro-batching dispatcher,
* ``async_hotset`` — the same under memory pressure: the catalog keeps
  a bounded hot set and evicts cold shards to the disk cache between
  questions,
* ``route`` — corpus-wide ``ask_any`` with retrieval pruning versus the
  full broadcast (ISSUE 4) —

and locks in the integrity contracts: every serving mode's answers are
bit-identical to the sequential reference, and the pruned pipeline
returns the broadcast top answer while parsing strictly fewer shards on
this multi-shard, disjoint-content corpus.  Timings land in a
``BENCH_serve.json`` scratch artifact (see ``_bench_utils.artifact_dir``
— the committed repo-root snapshot is regenerated only via the README's
``repro bench-serve`` protocol, never by a test run).
"""

from __future__ import annotations

import pytest

from repro.serving import run_serving_bench

from _bench_utils import emit_bench_artifact, print_table, scaled

#: Workload size (questions from the held-out split) and concurrency.
BENCH_QUESTIONS = scaled(16, minimum=6)
BENCH_SESSIONS = scaled(8, minimum=4)
BENCH_WORKERS = 4
#: Workload replays: the serving regime is repeat traffic over a warm
#: catalog, and the persistent pool's warm registries only show up from
#: the second replay on.
BENCH_REPEATS = 3
@pytest.mark.benchmark(group="perf-serve")
def test_perf_catalog_serving(benchmark, test_examples, tmp_path):
    examples = test_examples[:BENCH_QUESTIONS]
    pairs = [(example.question, example.table) for example in examples]
    # Hot-shard bound of the eviction-pressure mode: strictly below the
    # distinct-table count so the cold path is actually exercised at any
    # REPRO_BENCH_SCALE.
    distinct = len({table.fingerprint.digest for _, table in pairs})
    max_hot = max(1, min(2, distinct - 1))

    def run():
        return run_serving_bench(
            pairs,
            sessions=BENCH_SESSIONS,
            workers=BENCH_WORKERS,
            repeats=BENCH_REPEATS,
            disk_cache_dir=str(tmp_path / "serve-cache"),
            max_hot_shards=max_hot,
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)

    print_table(
        f"Serving: {report.questions} questions over {report.tables} tables, "
        f"{BENCH_SESSIONS} sessions x {BENCH_WORKERS} workers",
        ["mode", "total", "throughput", "p50/p95/p99", "identical", "speedup"],
        report.rows(),
    )
    print_table(
        f"Route: {report.route.questions} corpus-wide questions over "
        f"{report.route.shards} shards ({report.route.fallbacks} fallbacks)",
        ["regime", "total", "work", "top match", "speedup"],
        report.route_rows(),
    )

    artifact = emit_bench_artifact("serve", report.to_payload())
    assert artifact.exists()

    # The integrity bar: serving concurrency and eviction pressure never
    # change answers.  Deterministic — asserted on every run, no retries.
    assert set(report.modes) == {"sequential", "async", "async_hotset"}
    for timing in report.modes.values():
        assert timing.identical, f"{timing.mode} diverged from the reference"
    # Eviction pressure actually exercised the cold-shard path (needs at
    # least two distinct shards — the one serving a request is protected).
    if distinct > max_hot:
        assert report.modes["async_hotset"].catalog_stats["evictions"] >= 1
    # Every question was answered in every mode.
    for timing in report.modes.values():
        assert timing.questions == report.questions
    # The ISSUE 4 acceptance bar: pruned ask_any returns the broadcast
    # top answer on every question whose broadcast winner is retrievable,
    # while parsing strictly fewer shards than the broadcast (the bench
    # corpus has >= 2 shards with disjoint content).
    route = report.route
    assert route is not None and route.top_answers_match
    if route.shards >= 2:
        assert route.strictly_fewer, (
            f"pruning saved nothing: {route.pruned_shards_parsed} vs "
            f"{route.broadcast_shards_parsed} shard-parses"
        )
