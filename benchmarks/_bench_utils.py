"""Helpers shared by the experiment benches (scale factor, table printing)."""

from __future__ import annotations

import os

#: Scale factor for the bench corpus; 1.0 keeps the suite at a few minutes.
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: The top-k shown to users throughout the paper.
K = 7


def scaled(value: int, minimum: int = 1) -> int:
    """Scale an experiment size by ``REPRO_BENCH_SCALE``."""
    return max(minimum, int(round(value * SCALE)))


def print_table(title: str, headers, rows) -> None:
    """Uniform console rendering for the paper-style result tables."""
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows)) if rows else len(str(headers[i]))
        for i in range(len(headers))
    ]
    print()
    print(f"=== {title} ===")
    print(" | ".join(str(header).ljust(widths[i]) for i, header in enumerate(headers)))
    print("-+-".join("-" * width for width in widths))
    for row in rows:
        print(" | ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row)))
    print()
