"""Helpers shared by the experiment benches (scale factor, table printing,
timing-artifact emission)."""

from __future__ import annotations

import json
import os
from pathlib import Path

#: Scale factor for the bench corpus; 1.0 keeps the suite at a few minutes.
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: The top-k shown to users throughout the paper.
K = 7


def scaled(value: int, minimum: int = 1) -> int:
    """Scale an experiment size by ``REPRO_BENCH_SCALE``."""
    return max(minimum, int(round(value * SCALE)))


def artifact_dir() -> Path:
    """Where timing artifacts land: ``REPRO_BENCH_ARTIFACT_DIR`` or a
    gitignored scratch directory (``benchmarks/.artifacts``).

    The committed ``BENCH_*.json`` snapshots at the repo root are a
    deliberate perf trajectory — they must only change alongside the
    code change that motivates them, regenerated under controlled run
    conditions (see README).  The suite therefore never writes the repo
    root by default; an ordinary ``pytest`` run must not dirty the
    committed snapshots with single-run machine noise.  Set
    ``REPRO_BENCH_ARTIFACT_DIR=.`` to refresh the committed artifacts
    explicitly.
    """
    override = os.environ.get("REPRO_BENCH_ARTIFACT_DIR")
    if override:
        return Path(override)
    return Path(__file__).resolve().parent / ".artifacts"


def emit_bench_artifact(name: str, payload: dict) -> Path:
    """Write a ``BENCH_<name>.json`` timing artifact and return its path.

    Artifacts are the bench trajectory: each perf harness dumps its
    timings here so successive PRs have concrete numbers to beat.  The
    payload must be JSON-able (e.g. ``ParseBenchReport.to_payload()``).
    """
    path = artifact_dir() / f"BENCH_{name}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def print_table(title: str, headers, rows) -> None:
    """Uniform console rendering for the paper-style result tables."""
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows)) if rows else len(str(headers[i]))
        for i in range(len(headers))
    ]
    print()
    print(f"=== {title} ===")
    print(" | ".join(str(header).ljust(widths[i]) for i, header in enumerate(headers)))
    print("-+-".join("-" * width for width in widths))
    for row in rows:
        print(" | ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row)))
    print()
