"""Table 5 — user work time (minutes per 20 questions).

Paper: utterances + highlights 16.2 avg / 16.6 median / 6.45 min / 22.5 max;
utterances only 24.7 avg / 20.7 median / 17.5 min / 35.4 max — highlights
cut the average work time by ~34% and the median by ~20%.

The bench runs two simulated worker groups (one per condition) through 20
questions each and reports the same four statistics.  Asserted shape: the
highlights group is substantially faster while achieving comparable
correctness.
"""

from __future__ import annotations

import statistics

import pytest

from repro.users import ExplanationMode, run_worktime_comparison

from _bench_utils import K, print_table, scaled


def _stats(minutes):
    values = sorted(minutes.values())
    return {
        "avg": statistics.mean(values),
        "median": statistics.median(values),
        "min": values[0],
        "max": values[-1],
    }


@pytest.mark.benchmark(group="table5")
def test_table5_worktime(benchmark, baseline_parser, test_examples):
    workers_per_group = scaled(10, minimum=4)
    questions_per_worker = 20

    def run():
        return run_worktime_comparison(
            baseline_parser,
            test_examples,
            workers_per_group=workers_per_group,
            questions_per_worker=questions_per_worker,
            k=K,
            seed=55,
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    highlights = results[ExplanationMode.UTTERANCES_AND_HIGHLIGHTS]
    utterances = results[ExplanationMode.UTTERANCES_ONLY]
    fast = _stats(highlights.worker_minutes())
    slow = _stats(utterances.worker_minutes())

    print_table(
        "Table 5: User Work-Time in minutes on 20 questions "
        "(paper: 16.2/16.6 vs 24.7/20.7)",
        ["method", "avg", "median", "min", "max"],
        [
            ["Utterances + Highlights"] + [f"{fast[key]:.1f}m" for key in ("avg", "median", "min", "max")],
            ["Utterances"] + [f"{slow[key]:.1f}m" for key in ("avg", "median", "min", "max")],
        ],
    )
    saving = 1.0 - fast["avg"] / slow["avg"]
    print(f"average work-time saving from highlights: {saving:.1%} (paper: 34%)")

    # Shape: highlights cut the average work time substantially (paper: ~1/3).
    assert fast["avg"] < slow["avg"]
    assert saving > 0.15
    # Both conditions achieve comparable correctness (paper: identical).
    assert abs(highlights.user_correctness - utterances.user_correctness) < 0.2
