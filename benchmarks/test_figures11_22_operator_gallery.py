"""Figures/Tables 11-22 — one highlight example per lambda DCS operator.

The paper's appendix shows a highlight example for every operator of Table
10 (simple join, comparison, reverse join, previous, next, aggregation,
difference of values, difference of occurrences, union, intersection,
superlatives over values and over occurrences).

The bench regenerates the full gallery on the paper's example tables and
asserts, for every operator, that the provenance chain is ordered and that
the highlight marks at least one cell.
"""

from __future__ import annotations

import pytest

from repro.core import explain
from repro.dcs import builder as q
from repro.tables import Table

from _bench_utils import print_table


def olympics_table():
    return Table(
        columns=["Year", "Country", "City"],
        rows=[
            [1896, "Greece", "Athens"],
            [1900, "France", "Paris"],
            [2004, "Greece", "Athens"],
            [2008, "China", "Beijing"],
            [2012, "UK", "London"],
            [2016, "Brazil", "Rio de Janeiro"],
        ],
        name="olympics",
    )


def roster_table():
    return Table(
        columns=["Name", "Position", "Games", "Club"],
        rows=[
            ["Erich Burgener", "GK", 3, "Servette"],
            ["Charly In-Albon", "DF", 4, "Grasshoppers"],
            ["Andy Egli", "DF", 6, "Grasshoppers"],
            ["Marcel Koller", "DF", 2, "Grasshoppers"],
            ["Heinz Hermann", "MF", 6, "Grasshoppers"],
            ["Lucien Favre", "MF", 5, "Toulouse"],
        ],
        name="roster",
    )


def medals_table():
    return Table(
        columns=["Rank", "Nation", "Gold", "Silver", "Total"],
        rows=[
            [1, "New Caledonia", 120, 107, 288],
            [2, "Tahiti", 60, 42, 144],
            [3, "Papua New Guinea", 48, 25, 121],
            [4, "Fiji", 33, 44, 130],
            [5, "Samoa", 22, 17, 73],
            [6, "Tonga", 4, 6, 20],
        ],
        name="medals",
    )


def temples_table():
    return Table(
        columns=["Temple", "Town", "Prefecture", "Number"],
        rows=[
            ["Iwaya-ji", "Kumakogen", "Ehime", 45],
            ["Yakushi Nyorai", "Matsuyama", "Ehime", 46],
            ["Amida Nyorai", "Matsuyama", "Ehime", 47],
            ["Shaka Nyorai", "Matsuyama", "Ehime", 48],
            ["Yokomine-ji", "Saijo", "Ehime", 60],
            ["Fudo Myoo", "Imabari", "Ehime", 54],
            ["Jizo Bosatsu", "Imabari", "Ehime", 55],
        ],
        name="temples",
    )


def gallery():
    """(figure number, label, table, query) for every operator of Table 10."""
    olympics = olympics_table()
    roster = roster_table()
    medals = medals_table()
    temples = temples_table()
    return [
        (11, "Simple join (column records)", olympics,
         q.column_records("City", "Athens")),
        (12, "Comparison", roster,
         q.comparison_records("Games", ">", 4)),
        (13, "Reverse join (column values)", olympics,
         q.column_values("Year", q.column_records("City", "Athens"))),
        (14, "Previous", olympics,
         q.column_values("City", q.prev_records(q.column_records("City", "London")))),
        (15, "Next", olympics,
         q.column_values("City", q.next_records(q.column_records("City", "Athens")))),
        (16, "Aggregation", olympics,
         q.count(q.column_records("City", "Athens"))),
        (17, "Difference (values)", medals,
         q.value_difference("Total", "Nation", "Fiji", "Tonga")),
        (18, "Difference (occurrences)", temples,
         q.count_difference("Town", "Matsuyama", "Imabari")),
        (19, "Union", olympics,
         q.column_values("City", q.column_records("Country", q.union("China", "Greece")))),
        (20, "Intersection", olympics,
         q.column_values("City", q.intersection(
             q.column_records("Country", "UK"), q.column_records("Year", 2012)))),
        (21, "Superlative (values)", olympics,
         q.compare_values("Year", "City", q.union("London", "Beijing"))),
        (22, "Superlative (occurrences)", olympics,
         q.most_common("City")),
    ]


def run_gallery():
    return [(number, label, explain(query, table)) for number, label, table, query in gallery()]


@pytest.mark.benchmark(group="figures")
def test_operator_gallery(benchmark):
    explanations = benchmark.pedantic(run_gallery, rounds=1, iterations=1)

    rows = []
    for number, label, explanation in explanations:
        summary = explanation.highlighted.summary()
        rows.append(
            [
                f"Fig. {number}",
                label,
                explanation.utterance[:64],
                ", ".join(explanation.answer)[:24],
                summary["colored"],
                summary["framed"],
                summary["lit"],
            ]
        )
        print(f"\n=== Figure {number}: {label} ===")
        print(explanation.as_text())

    print_table(
        "Figures 11-22: one highlight example per lambda DCS operator",
        ["figure", "operator", "utterance", "answer", "colored", "framed", "lit"],
        rows,
    )

    assert len(explanations) == 12
    for number, label, explanation in explanations:
        provenance = explanation.highlighted.provenance
        assert provenance.chain_is_ordered(), label
        assert explanation.highlighted.summary()["colored"] >= 1, label
        assert explanation.utterance, label

    # Spot checks mirroring the appendix captions.
    by_number = {number: explanation for number, _label, explanation in explanations}
    assert by_number[16].highlighted.header_label("City") == "COUNT(City)"
    assert by_number[17].answer == ("110",)
    assert by_number[18].answer == ("1",)
    assert by_number[21].answer == ("London",)
    assert by_number[22].answer == ("Athens",)
