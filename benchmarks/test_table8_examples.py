"""Table 8 — qualitative examples: the user's explanation choice vs. the
parser's baseline choice.

The paper's Table 8 lists test questions together with the utterance of the
candidate the user selected and the utterance of the parser's top-ranked
candidate, illustrating the kinds of mistakes non-experts fix through the
explanations.

The bench reproduces the table: it runs the oracle selection policy over
the held-out questions and prints the first few cases where the user's
choice differs from (and fixes) the parser's baseline.
"""

from __future__ import annotations

import pytest

from repro.core import utterance
from repro.interface import InteractiveDeployment

from _bench_utils import K, print_table, scaled


@pytest.mark.benchmark(group="table8")
def test_table8_user_choice_vs_parser(benchmark, baseline_parser, test_examples):
    examples = test_examples[: scaled(60, minimum=20)]

    def run():
        deployment = InteractiveDeployment(parser=baseline_parser, k=K, seed=808)
        return deployment.run_with_oracle(examples)

    report = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for outcome in report.outcomes:
        if outcome.parser_correct or not outcome.user_correct:
            continue
        parser_top = outcome.response.parse.top
        chosen_rank = outcome.chosen_rank
        chosen = outcome.response.parse.candidates[chosen_rank]
        rows.append(
            [
                outcome.example.question[:60],
                ", ".join(outcome.example.table.columns)[:45],
                utterance(chosen.query)[:70],
                utterance(parser_top.query)[:70],
            ]
        )
        if len(rows) >= 6:
            break

    print_table(
        "Table 8: questions where the explanation choice fixes the parser baseline",
        ["Question", "Table attributes", "User explanation choice", "Parser baseline"],
        rows or [["(no divergent examples at this scale)", "-", "-", "-"]],
    )

    fixed = sum(
        1 for outcome in report.outcomes if outcome.user_correct and not outcome.parser_correct
    )
    print(f"questions where the user choice fixes an incorrect parser top-1: {fixed}")

    # Shape: the explanations let users fix a non-trivial number of questions.
    assert fixed > 0
    assert rows, "expected at least one qualitative example row"
