"""Shared fixtures for the experiment benches.

Every bench reproduces one table or figure of the paper's evaluation
(Section 7).  They all share the same synthetic corpus and the same
weakly-supervised baseline parser, built once per session here.

The corpus size is controlled by the ``REPRO_BENCH_SCALE`` environment
variable (a float; 1.0 is the default and keeps the whole bench suite at a
few minutes on a laptop; larger values move the experiments closer to the
paper's 700-question scale at a proportional cost in wall-clock time).
"""

from __future__ import annotations

import pytest

from repro.dataset import DatasetConfig, build_dataset, split_by_tables
from repro.parser import train_parser

from _bench_utils import scaled

#: Number of generated tables / questions per table for the bench corpus.
BENCH_NUM_TABLES = scaled(36, minimum=12)
BENCH_QUESTIONS_PER_TABLE = 8
#: Paraphrase rate controls how hard the corpus is for a lexical parser.
BENCH_PARAPHRASE_RATE = 0.55
#: Training set size and epochs for the weakly-supervised baseline parser.
BENCH_TRAIN_EXAMPLES = scaled(180, minimum=60)
BENCH_EPOCHS = 3


@pytest.fixture(scope="session")
def bench_dataset():
    config = DatasetConfig(
        num_tables=BENCH_NUM_TABLES,
        questions_per_table=BENCH_QUESTIONS_PER_TABLE,
        seed=2019,
        paraphrase_rate=BENCH_PARAPHRASE_RATE,
    )
    return build_dataset(config)


@pytest.fixture(scope="session")
def bench_split(bench_dataset):
    return split_by_tables(bench_dataset, test_fraction=0.25, seed=7)


@pytest.fixture(scope="session")
def baseline_parser(bench_split):
    """The paper's baseline: a parser trained with weak (answer) supervision."""
    return train_parser(
        bench_split.train.training_examples(annotated=False)[:BENCH_TRAIN_EXAMPLES],
        epochs=BENCH_EPOCHS,
        use_annotations=False,
        seed=11,
    )


@pytest.fixture(scope="session")
def test_examples(bench_split):
    return bench_split.test.evaluation_examples()
