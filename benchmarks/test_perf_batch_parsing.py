"""Perf bench — sequential vs memoized vs batched parsing (ISSUE 1).

The paper's deployment answers every question by generating and executing
up to 600 candidate lambda DCS queries (Table 7 reports the cost).  This
bench locks in the batching/caching subsystem of :mod:`repro.perf`: the
same held-out workload is parsed three ways —

* ``sequential`` — the seed hot path (no memoization, no candidate cache),
* ``memoized``   — content-addressed sub-query + candidate caches,
* ``batched``    — the same caches driven by a worker pool,

with the workload replayed twice to model repeated deployment traffic.
The asserted shape: both caching modes beat the sequential seed path.
Timings are written to ``BENCH_parse.json`` so future PRs have a
trajectory to beat.
"""

from __future__ import annotations

import pytest

from repro.perf import run_parse_bench

from _bench_utils import emit_bench_artifact, print_table, scaled

#: Workload size (questions drawn from the held-out split) and replays.
BENCH_QUESTIONS = scaled(16, minimum=6)
BENCH_REPEATS = 2
BENCH_WORKERS = 4


@pytest.mark.benchmark(group="perf-parse")
def test_perf_batch_parsing(benchmark, baseline_parser, test_examples):
    examples = test_examples[:BENCH_QUESTIONS]
    pairs = [(example.question, example.table) for example in examples]

    report = benchmark.pedantic(
        lambda: run_parse_bench(
            pairs,
            model=baseline_parser.model,
            repeats=BENCH_REPEATS,
            workers=BENCH_WORKERS,
        ),
        rounds=1,
        iterations=1,
    )

    print_table(
        f"Parse latency: {report.questions} parses "
        f"({len(pairs)} questions x {BENCH_REPEATS} repeats, "
        f"{BENCH_WORKERS} workers)",
        ["mode", "total", "mean/question", "speedup"],
        report.rows(),
    )

    artifact = emit_bench_artifact("parse", report.to_payload())
    assert artifact.exists()

    sequential = report.modes["sequential"]
    memoized = report.modes["memoized"]
    batched = report.modes["batched"]

    # Every mode parsed the identical workload and generated the same
    # candidates — the caches change speed, never results.
    assert memoized.candidates == sequential.candidates
    assert batched.candidates == sequential.candidates

    # The point of the subsystem: memoized + batched beat the seed path.
    assert memoized.total_seconds < sequential.total_seconds, (
        f"memoized ({memoized.total_seconds:.3f}s) did not beat "
        f"sequential ({sequential.total_seconds:.3f}s)"
    )
    assert batched.total_seconds < sequential.total_seconds, (
        f"batched ({batched.total_seconds:.3f}s) did not beat "
        f"sequential ({sequential.total_seconds:.3f}s)"
    )
