"""Perf bench — sequential / memoized / indexed / batched / process (ISSUE 2).

The paper's deployment answers every question by generating and executing
up to 600 candidate lambda DCS queries (Table 7 reports the cost).  This
bench locks in the caching/indexing/parallelism subsystem of
:mod:`repro.perf`: the same held-out workload is parsed five ways —

* ``sequential`` — the seed hot path (row scans, no caches),
* ``memoized``   — content-addressed sub-query + candidate caches (PR 1),
* ``indexed``    — the same caches with misses answered from the
  content-addressed column index (hash/bisect lookups),
* ``batched``    — the indexed configuration on a thread pool (GIL-bound),
* ``process``    — the indexed configuration on the process backend
  (deduplicated work units, fork-inherited warm caches),

with the workload replayed to model repeated deployment traffic — the
regime where the candidate caches (thread) and work-unit deduplication
(process) pay off.  The asserted shape: indexed beats memoized beats
sequential (>= the 3x acceptance bar), every pooled mode beats the seed
path, and — on hosts with >= 2 cores, where the ordering is structural
rather than noise-bound — the process pool beats the thread pool.
Timings are written to ``BENCH_parse.json`` so future PRs have a
trajectory to beat.
"""

from __future__ import annotations

import pytest

from repro.perf import run_parse_bench
from repro.perf.procpool import _available_cpus

from _bench_utils import emit_bench_artifact, print_table, scaled

#: Workload size (questions drawn from the held-out split) and replays.
BENCH_QUESTIONS = scaled(16, minimum=6)
BENCH_REPEATS = 3
BENCH_WORKERS = 4


#: Timing-ordering assertions get this many whole-harness attempts before
#: failing: single-run wall-clock orderings on shared CI hardware carry
#: irreducible scheduler noise, and a genuine regression fails every
#: attempt while a noise spike fails one.
BENCH_ATTEMPTS = 3


def _assert_bench_shape(report) -> None:
    sequential = report.modes["sequential"]
    memoized = report.modes["memoized"]
    indexed = report.modes["indexed"]
    batched = report.modes["batched"]
    process = report.modes["process"]

    # The point of the subsystem: every optimised mode beats the seed
    # path, and the index beats bare memoization.
    for timing in (memoized, indexed, batched, process):
        assert timing.total_seconds < sequential.total_seconds, (
            f"{timing.mode} ({timing.total_seconds:.3f}s) did not beat "
            f"sequential ({sequential.total_seconds:.3f}s)"
        )
    assert indexed.total_seconds < memoized.total_seconds, (
        f"indexed ({indexed.total_seconds:.3f}s) did not beat "
        f"memoized ({memoized.total_seconds:.3f}s)"
    )
    # Process vs thread: with >= 2 cores the process pool wins
    # structurally (cold generation parallelises past the GIL) and the
    # ordering is stable enough to assert.  On a single-core host its
    # advantage is work-unit deduplication alone and the two pools run
    # within measurement noise of each other, so only the sanity bound
    # above applies there; the committed ``BENCH_parse.json`` snapshot
    # records a full run where the process pool wins outright.
    if _available_cpus() >= 2:
        assert process.total_seconds < batched.total_seconds, (
            f"process ({process.total_seconds:.3f}s) did not beat "
            f"batched/thread ({batched.total_seconds:.3f}s)"
        )
    # The ISSUE 2 acceptance bar: indexed+memoized >= 3x over the seed.
    assert report.speedup("indexed") >= 3.0, (
        f"indexed speedup {report.speedup('indexed'):.2f}x fell below 3x"
    )


@pytest.mark.benchmark(group="perf-parse")
def test_perf_batch_parsing(benchmark, baseline_parser, test_examples):
    examples = test_examples[:BENCH_QUESTIONS]
    pairs = [(example.question, example.table) for example in examples]

    def run():
        return run_parse_bench(
            pairs,
            model=baseline_parser.model,
            repeats=BENCH_REPEATS,
            workers=BENCH_WORKERS,
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)

    for attempt in range(BENCH_ATTEMPTS):
        print_table(
            f"Parse latency: {report.questions} parses "
            f"({len(pairs)} questions x {BENCH_REPEATS} repeats, "
            f"{BENCH_WORKERS} workers)"
            + (f" [attempt {attempt + 1}]" if attempt else ""),
            ["mode", "total", "mean/question", "speedup"],
            report.rows(),
        )

        artifact = emit_bench_artifact("parse", report.to_payload())
        assert artifact.exists()

        sequential = report.modes["sequential"]
        # Every mode parsed the identical workload and generated the same
        # candidates — the caches and the index change speed, never
        # results.  Deterministic: never retried.
        for mode in ("memoized", "indexed", "batched", "process"):
            assert report.modes[mode].candidates == sequential.candidates

        try:
            _assert_bench_shape(report)
            break
        except AssertionError:
            if attempt == BENCH_ATTEMPTS - 1:
                raise
            report = run()  # timing noise: re-measure the whole harness
