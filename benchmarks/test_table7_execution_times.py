"""Table 7 — average execution time per explanation stage.

Paper (on the full 4,344-question WikiTableQuestions test set, Java/SEMPRE
on a Xeon server): candidate generation 1.22 s, utterance generation
0.22 s, highlight generation 1.36 s per question.

The bench measures the same three stages of this reproduction over the
held-out questions.  Absolute numbers differ (different language, parser
and corpus); the asserted shape is the paper's ordering — utterance
generation is by far the cheapest stage, and candidate/highlight generation
are the two heavy stages.
"""

from __future__ import annotations

import time

import pytest

from repro.core import ExplanationGenerator
from repro.core.highlights import Highlighter
from repro.core.utterance import derive

from _bench_utils import K, print_table


def _stage_times(parser, examples, k):
    # Earlier benches in the session may have warmed the shared parser's
    # content-addressed caches for these very questions; this bench measures
    # *generation* cost, so start cold.
    parser.clear_caches()
    candidate_seconds = []
    utterance_seconds = []
    highlight_seconds = []
    for example in examples:
        started = time.perf_counter()
        parse = parser.parse(example.question, example.table)
        candidate_seconds.append(time.perf_counter() - started)

        top = parse.top_k(k)
        started = time.perf_counter()
        for candidate in top:
            derive(candidate.query)
        utterance_seconds.append(time.perf_counter() - started)

        highlighter = Highlighter(example.table)
        started = time.perf_counter()
        for candidate in top:
            highlighter.highlight(candidate.query, output=True)
        highlight_seconds.append(time.perf_counter() - started)
    count = len(examples)
    return (
        sum(candidate_seconds) / count,
        sum(utterance_seconds) / count,
        sum(highlight_seconds) / count,
        count,
    )


@pytest.mark.benchmark(group="table7")
def test_table7_execution_times(benchmark, baseline_parser, test_examples):
    examples = test_examples

    candidates_avg, utterances_avg, highlights_avg, count = benchmark.pedantic(
        lambda: _stage_times(baseline_parser, examples, K), rounds=1, iterations=1
    )

    print_table(
        "Table 7: Avg. execution time in seconds per question "
        "(paper: cand. 1.22, utter. 0.22, highlights 1.36 on 4,344 questions)",
        ["questions", "Cand. Gen.", "Utter. Gen.", "Highlights Gen."],
        [[count, f"{candidates_avg:.4f}", f"{utterances_avg:.4f}", f"{highlights_avg:.4f}"]],
    )

    # Shape: utterance generation is the cheapest stage by a wide margin.
    assert utterances_avg < candidates_avg
    assert utterances_avg < highlights_avg
    # Every stage is interactive-speed on this corpus.
    assert candidates_avg < 5.0
    assert highlights_avg < 5.0
