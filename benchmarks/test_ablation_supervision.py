"""Ablation — how many annotated examples does the parser need?

Section 7.3 observes that correctness and MRR grow with the number of
annotated training examples.  The bench sweeps the size of the annotation
pool (using gold annotations, i.e. an idealised perfectly-labelling crowd)
and reports correctness/MRR on a fixed dev set.
"""

from __future__ import annotations

import pytest

from repro.parser import evaluate_parser, train_parser

from _bench_utils import K, print_table, scaled


@pytest.mark.benchmark(group="ablations")
def test_ablation_annotation_budget(benchmark, bench_split):
    budgets = [0, scaled(20, minimum=10), scaled(60, minimum=25), scaled(120, minimum=45)]
    dev_examples = bench_split.test.evaluation_examples()[: scaled(40, minimum=15)]
    pool = bench_split.train.examples[: budgets[-1]]

    def run():
        results = []
        for budget in budgets:
            training = [
                example.to_training_example(annotated=(index < budget))
                for index, example in enumerate(pool)
            ]
            parser = train_parser(
                training, epochs=3, use_annotations=True, seed=17
            )
            report = evaluate_parser(parser, dev_examples, k=K)
            results.append((budget, report))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print_table(
        "Ablation: annotated-example budget vs. dev correctness / MRR",
        ["annotations", "correctness", "MRR", f"bound@{K}"],
        [
            [budget, f"{report.correctness:.1%}", f"{report.mrr:.3f}", f"{report.correctness_bound:.1%}"]
            for budget, report in results
        ],
    )

    zero_budget = results[0][1]
    full_budget = results[-1][1]
    # Shape: the fully-annotated regime is at least as good as the
    # weak-supervision-only regime (usually clearly better).
    assert full_budget.correctness >= zero_budget.correctness - 0.02
    assert full_budget.mrr >= zero_budget.mrr - 0.02
