"""Table 6 — correctness of the parser, the users and the hybrid policy.

Paper (700 test examples): parser 37.1%, users 44.6%, hybrid 48.7%, bound
56%; the hybrid policy improves the baseline parser by ~11.6 points and
reaches ~87% of the correctness bound.

The bench runs the deployment loop with simulated workers over the held-out
questions and prints the same four rows (correct counts and rates).  The
asserted shape: parser < hybrid <= bound, users <= bound, and the hybrid
policy recovers a large fraction of the gap between the parser and the
bound.
"""

from __future__ import annotations

import pytest

from repro.users import StudyConfig, UserStudy, worker_pool

from _bench_utils import K, print_table


@pytest.mark.benchmark(group="table6")
def test_table6_correctness(benchmark, baseline_parser, test_examples):
    questions_per_worker = 20
    num_workers = max(2, (len(test_examples) + questions_per_worker - 1) // questions_per_worker)

    def run():
        study = UserStudy(
            baseline_parser,
            StudyConfig(k=K, questions_per_worker=questions_per_worker, seed=600),
        )
        return study.run(test_examples, worker_pool(num_workers, seed=600))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    counts = result.correct_counts()
    total = counts["total"]

    print_table(
        "Table 6: User Study - Correctness Results "
        "(paper: parser 37.1%, users 44.6%, hybrid 48.7%, bound 56%)",
        ["scenario", "correct examples", "correctness"],
        [
            ["Parser", f"{counts['parser']}/{total}", f"{result.parser_correctness:.1%}"],
            ["Users", f"{counts['users']}/{total}", f"{result.user_correctness:.1%}"],
            ["Hybrid", f"{counts['hybrid']}/{total}", f"{result.hybrid_correctness:.1%}"],
            ["Bound", f"{counts['bound']}/{total}", f"{result.correctness_bound:.1%}"],
        ],
    )
    if result.correctness_bound > result.parser_correctness:
        recovered = (result.hybrid_correctness - result.parser_correctness) / (
            result.correctness_bound - result.parser_correctness
        )
        print(f"hybrid recovers {recovered:.1%} of the parser-to-bound gap "
              f"(paper: hybrid reaches 87% of the bound)")

    # Shape assertions mirroring the paper's ordering of scenarios.
    assert result.parser_correctness < result.correctness_bound
    assert result.user_correctness <= result.correctness_bound + 1e-9
    assert result.hybrid_correctness >= result.user_correctness - 1e-9
    assert result.hybrid_correctness > result.parser_correctness
    assert result.hybrid_correctness <= result.correctness_bound + 1e-9
    # The hybrid policy must reach a sizeable fraction of its potential.
    assert result.hybrid_correctness >= 0.6 * result.correctness_bound
