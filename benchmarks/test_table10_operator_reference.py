"""Table 10 — lambda DCS operators, their SQL translation and provenance.

The paper's Table 10 is the reference mapping from every lambda DCS
operator to (a) its SQL semantics and (b) its multilevel provenance rules.
The bench regenerates the reference from the implementation: for each
operator it prints the example query, the generated SQL and the sizes of
the provenance sets, and asserts that the lambda DCS executor and the SQL
translation agree on the example table.
"""

from __future__ import annotations

import pytest

from repro.core import compute_provenance, utterance
from repro.dcs import builder as q, to_sexpr
from repro.sql import check_equivalence, to_sql
from repro.tables import Table

from _bench_utils import print_table


def reference_table():
    return Table(
        columns=["Year", "Country", "City", "Total"],
        rows=[
            [1896, "Greece", "Athens", 100],
            [1900, "France", "Paris", 120],
            [2004, "Greece", "Athens", 300],
            [2008, "China", "Beijing", 320],
            [2012, "UK", "London", 280],
            [2016, "Brazil", "Rio de Janeiro", 310],
        ],
        name="reference",
    )


def operators():
    """(operator name, example query) in the order of the paper's Table 10."""
    return [
        ("Column Records", q.column_records("City", "Athens")),
        ("Column Values", q.column_values("Year", q.column_records("City", "Athens"))),
        ("Values in Preceding Records",
         q.column_values("Year", q.prev_records(q.column_records("City", "Athens")))),
        ("Values in Following Records",
         q.column_values("Year", q.next_records(q.column_records("City", "Athens")))),
        ("Aggregation on Values",
         q.sum_(q.column_values("Total", q.column_records("Country", "Greece")))),
        ("Difference of Values",
         q.value_difference("Total", "City", "London", "Beijing")),
        ("Difference of Value Occurrences",
         q.count_difference("City", "Athens", "London")),
        ("Union of Values",
         q.column_values("City", q.column_records("Country", q.union("China", "Greece")))),
        ("Intersection of Records",
         q.intersection(q.column_records("City", "London"), q.column_records("Country", "UK"))),
        ("Records with Highest Value", q.argmax_records("Year")),
        ("Value in Record with Highest Index",
         q.value_in_last_record("Year", q.column_records("City", "Athens"))),
        ("Value with Most Appearances", q.most_common("City")),
        ("Comparing Values",
         q.compare_values("Year", "City", q.union("London", "Beijing"))),
    ]


def run_reference():
    table = reference_table()
    rows = []
    for name, query in operators():
        sql = to_sql(query)
        report = check_equivalence(query, table)
        provenance = compute_provenance(query, table)
        rows.append(
            {
                "name": name,
                "query": to_sexpr(query),
                "utterance": utterance(query),
                "sql": sql.sql,
                "equivalent": report.equivalent,
                "po": len(provenance.output),
                "pe": len(provenance.execution),
                "pc": len(provenance.columns),
                "ordered": provenance.chain_is_ordered(),
            }
        )
    return rows


@pytest.mark.benchmark(group="table10")
def test_table10_operator_reference(benchmark):
    rows = benchmark.pedantic(run_reference, rounds=1, iterations=1)

    print_table(
        "Table 10: lambda DCS operators, SQL translation and provenance set sizes",
        ["operator", "|PO|", "|PE|", "|PC|", "SQL == DCS"],
        [[row["name"], row["po"], row["pe"], row["pc"], row["equivalent"]] for row in rows],
    )
    for row in rows:
        print(f"\n--- {row['name']} ---")
        print("lambda DCS:", row["query"])
        print("utterance :", row["utterance"])
        print("SQL       :", row["sql"])

    assert len(rows) == 13
    for row in rows:
        assert row["equivalent"], row["name"]
        assert row["ordered"], row["name"]
        assert row["po"] <= row["pe"] <= row["pc"], row["name"]
