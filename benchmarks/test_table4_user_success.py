"""Table 4 — user-study success rates.

Paper: 405 distinct questions, 2,835 explanations shown, 78.4% of the
questions judged successfully (correct query selected, or None when no
candidate was correct).

The bench runs the same protocol with simulated workers over the held-out
test questions and prints the same row.  The asserted *shape*: a large
majority of questions are judged successfully, far above the failure rate
the paper reports for showing raw lambda DCS to non-experts.
"""

from __future__ import annotations

import pytest

from repro.users import StudyConfig, UserStudy, worker_pool

from _bench_utils import K, print_table


@pytest.mark.benchmark(group="table4")
def test_table4_user_success(benchmark, baseline_parser, test_examples):
    questions_per_worker = 20
    num_workers = max(2, (len(test_examples) + questions_per_worker - 1) // questions_per_worker)

    def run():
        study = UserStudy(
            baseline_parser,
            StudyConfig(k=K, questions_per_worker=questions_per_worker, seed=404),
        )
        workers = worker_pool(num_workers, seed=404)
        return study.run(test_examples, workers)

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    print_table(
        "Table 4: User Study - Success Rates (paper: 405 questions, 2835 explanations, 78.4%)",
        ["distinct questions", "explanations", "avg. success"],
        [[result.distinct_questions, result.explanations_shown, f"{result.question_success_rate:.1%}"]],
    )

    assert result.distinct_questions > 0
    assert result.explanations_shown >= result.distinct_questions
    # Shape: non-experts succeed on a clear majority of questions.
    assert result.question_success_rate > 0.6
