"""Figures 4-7 — provenance-highlight examples and large-table sampling.

* Figure 4: comparison — *rows where values of column Games are more than 4*,
* Figure 5: superlative over values — *between London or Beijing who has the
  highest value of column Year*,
* Figure 6: arithmetic difference — *difference in column Total between Fiji
  and Tonga*,
* Figure 7: the same highlights scaled to a large table by sampling three
  representative rows (Section 5.3).

The bench regenerates all four and asserts the cell classes the paper's
figures show.
"""

from __future__ import annotations

import pytest

from repro.core import HighlightLevel, explain, highlight, render_text, sample_highlights
from repro.dcs import builder as q
from repro.tables import Table

from _bench_utils import print_table


def roster_table():
    return Table(
        columns=["Name", "Position", "Games", "Club"],
        rows=[
            ["Erich Burgener", "GK", 3, "Servette"],
            ["Charly In-Albon", "DF", 4, "Grasshoppers"],
            ["Andy Egli", "DF", 6, "Grasshoppers"],
            ["Marcel Koller", "DF", 2, "Grasshoppers"],
            ["Heinz Hermann", "MF", 6, "Grasshoppers"],
            ["Lucien Favre", "MF", 5, "Toulouse"],
        ],
        name="roster",
    )


def olympics_table():
    return Table(
        columns=["Year", "Country", "City"],
        rows=[
            [1896, "Greece", "Athens"],
            [1900, "France", "Paris"],
            [2004, "Greece", "Athens"],
            [2008, "China", "Beijing"],
            [2012, "UK", "London"],
            [2016, "Brazil", "Rio de Janeiro"],
        ],
        name="olympics",
    )


def medals_table():
    return Table(
        columns=["Rank", "Nation", "Gold", "Total"],
        rows=[
            [1, "New Caledonia", 120, 288],
            [2, "Tahiti", 60, 144],
            [3, "Papua New Guinea", 48, 121],
            [4, "Fiji", 33, 130],
            [5, "Samoa", 22, 73],
            [6, "Tonga", 4, 20],
        ],
        name="medals",
    )


def growth_table(rows=300):
    countries = ["Madagascar", "Burkina Faso", "Kenya", "Ghana", "Togo"]
    data = []
    for index in range(rows):
        data.append(
            [index + 1, countries[index % len(countries)], 1980 + (index % 35),
             round(1.5 + ((index * 7) % 17) * 0.1, 3)]
        )
    return Table(columns=["Row", "Country", "Year", "Growth Rate"], rows=data, name="growth")


def run_figures():
    figure4 = highlight(q.comparison_records("Games", ">", 4), roster_table())
    figure5 = highlight(
        q.compare_values("Year", "City", q.union("London", "Beijing")), olympics_table()
    )
    figure6 = explain(q.value_difference("Total", "Nation", "Fiji", "Tonga"), medals_table())
    large = growth_table()
    figure7_query = q.max_(
        q.column_values("Growth Rate", q.column_records("Country", "Madagascar"))
    )
    figure7 = sample_highlights(figure7_query, large, seed=7)
    return figure4, figure5, figure6, figure7, large


@pytest.mark.benchmark(group="figures")
def test_figures_4_to_7(benchmark):
    figure4, figure5, figure6, figure7, large = benchmark.pedantic(
        run_figures, rounds=1, iterations=1
    )

    print("\n=== Figure 4: comparison highlights ===")
    print(render_text(figure4))
    assert {cell.coordinate for cell in figure4.colored_cells} == {
        (2, "Games"), (4, "Games"), (5, "Games"),
    }

    print("\n=== Figure 5: superlative (values) highlights ===")
    print(render_text(figure5))
    colored5 = {cell.coordinate for cell in figure5.colored_cells}
    assert (4, "City") in colored5  # London wins (2012 > 2008)
    # The years of both candidate rows are examined (framed), per Table 10.
    assert figure5.level(3, "Year") == HighlightLevel.FRAMED
    assert figure5.level(3, "City") == HighlightLevel.LIT

    print("\n=== Figure 6: difference highlights ===")
    print(figure6.as_text())
    assert figure6.answer == ("110",)
    assert figure6.highlighted.summary()["colored"] == 2

    print("\n=== Figure 7: sampled highlights on a large table "
          f"({large.num_rows} rows -> {figure7.sample_size} sampled) ===")
    print(render_text(figure7.highlighted, rows=figure7.row_indices))
    rows_summary = [[index, large.cell(index, 'Country').display(),
                     large.cell(index, 'Year').display()]
                    for index in figure7.row_indices]
    print_table("Figure 7 sampled rows", ["row", "Country", "Year"], rows_summary)

    # Shape: three or fewer sampled rows explain a 300-row table, covering
    # output, execution and column provenance strata.
    assert figure7.sample_size <= 3
    assert set(figure7.row_indices) & figure7.output_rows
    assert set(figure7.row_indices) & (figure7.column_rows - figure7.execution_rows)
