"""Section 7.2 — the choice of k (how many candidates to show users).

Paper: with k=7, 56% of the questions have a correct candidate among the
displayed queries; re-examining 100 questions unsolved at k=7 showed that
doubling to k=14 adds only ~5% coverage, "a minor improvement at the cost
of doubling user effort" — hence k=7.

The bench computes the correctness bound at several values of k and checks
the same diminishing-returns shape: most of the coverage is already
obtained at k=7, and going to k=14 adds little.
"""

from __future__ import annotations

import pytest

from repro.parser import evaluate_parser

from _bench_utils import K, print_table


@pytest.mark.benchmark(group="k-sensitivity")
def test_choice_of_k(benchmark, baseline_parser, test_examples):
    ks = [1, 3, 5, 7, 10, 14]

    def run():
        return evaluate_parser(baseline_parser, test_examples, k=K, candidate_limit=None)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    bounds = {k: report.bound_at(k) for k in ks}

    print_table(
        "Choice of k: correctness bound vs. number of displayed candidates "
        "(paper: 56% at k=7; k=14 adds ~5% on unsolved questions)",
        ["k"] + [str(k) for k in ks],
        [["bound"] + [f"{bounds[k]:.1%}" for k in ks]],
    )
    gain_1_to_7 = bounds[7] - bounds[1]
    gain_7_to_14 = bounds[14] - bounds[7]
    print(f"coverage gained from k=1 to k=7: {gain_1_to_7:.1%}; "
          f"from k=7 to k=14: {gain_7_to_14:.1%}")

    # Shape: the bound is monotone in k, and the k=7→14 gain is small
    # compared with the k=1→7 gain (diminishing returns).
    assert all(bounds[ks[i]] <= bounds[ks[i + 1]] + 1e-9 for i in range(len(ks) - 1))
    assert gain_7_to_14 <= max(0.10, 0.5 * gain_1_to_7)
