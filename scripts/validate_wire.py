#!/usr/bin/env python
"""Validate wire payloads against the committed JSON Schemas.

The CI wire-shape gate: any drift between what the server emits and the
committed schemas (``schemas/query_result.v2.json``,
``schemas/serve_response.v1.json``, ``schemas/bench_serve.v3.json``,
``schemas/bench_churn.v1.json``, ``schemas/bench_discovery.v1.json``,
``schemas/bench_join.v1.json``) fails the build.  The committed
``BENCH_serve.json``, ``BENCH_churn.json``, ``BENCH_discovery.json``
and ``BENCH_join.json`` artifacts are themselves fixtures: a bench
payload that stops matching its schema fails here before it ever lands.

Usage::

    # v2 QueryResult envelopes, one JSON object per line
    # (e.g. from `repro serve --self-test N --emit-results results.jsonl`)
    python scripts/validate_wire.py --schema v2 results.jsonl

    # a recorded v1 response fixture (single JSON object per file)
    python scripts/validate_wire.py --schema v1 schemas/fixtures/*.v1.json

    # no arguments: validate the committed fixtures
    python scripts/validate_wire.py

Files ending in ``.jsonl`` are treated as JSON lines; anything else as a
single JSON document.  Uses the ``jsonschema`` package when installed,
else the bundled subset validator in :mod:`repro.api.schema`.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api import schema as wire_schema  # noqa: E402

SCHEMAS = {
    "v1": "serve_response.v1.json",
    "v2": "query_result.v2.json",
    "bench-serve-v3": "bench_serve.v3.json",
    "bench-churn-v1": "bench_churn.v1.json",
    "bench-discovery-v1": "bench_discovery.v1.json",
    "bench-join-v1": "bench_join.v1.json",
}

FIXTURES = [
    ("v1", REPO_ROOT / "schemas" / "fixtures" / "ask_response.v1.json"),
    ("v1", REPO_ROOT / "schemas" / "fixtures" / "ask_any_response.v1.json"),
    ("v2", REPO_ROOT / "schemas" / "fixtures" / "query_result.v2.json"),
    ("v2", REPO_ROOT / "schemas" / "fixtures" / "query_result_composed.v2.json"),
    ("bench-serve-v3", REPO_ROOT / "BENCH_serve.json"),
    ("bench-churn-v1", REPO_ROOT / "BENCH_churn.json"),
    ("bench-discovery-v1", REPO_ROOT / "BENCH_discovery.json"),
    ("bench-join-v1", REPO_ROOT / "BENCH_join.json"),
]


def validate_file(path: Path, schema_name: str) -> int:
    """Validate one file; returns the number of payloads checked."""
    schema = wire_schema.load_schema(SCHEMAS[schema_name])
    text = path.read_text(encoding="utf-8")
    if path.suffix == ".jsonl":
        return wire_schema.validate_lines(text.splitlines(), schema)
    wire_schema.validate_payload(json.loads(text), schema)
    return 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--schema", choices=sorted(SCHEMAS), help="which schema the files follow"
    )
    parser.add_argument(
        "files", nargs="*", type=Path,
        help="payload files (.jsonl = JSON lines); default: committed fixtures",
    )
    args = parser.parse_args(argv)

    targets = (
        [(args.schema, path) for path in args.files] if args.files else FIXTURES
    )
    if args.files and not args.schema:
        parser.error("--schema is required when files are given")

    failures = 0
    for schema_name, path in targets:
        try:
            checked = validate_file(path, schema_name)
        except (wire_schema.SchemaValidationError, OSError, json.JSONDecodeError) as error:
            print(f"FAIL {path} [{schema_name}]: {error}")
            failures += 1
            continue
        print(f"ok   {path} [{schema_name}]: {checked} payload(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
