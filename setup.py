"""Setup shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
editable installs keep working on environments whose setuptools/pip lack
PEP 660 editable-wheel support (no ``wheel`` package available offline).
"""

from setuptools import setup

setup()
